"""Tests for the declarative ExperimentSpec and its front-end builders.

Every front-end — CLI flags, job files, the Wayfinder keyword constructors —
must resolve equivalent inputs to the *same* spec object, and the spec must
survive a serialization round-trip, because checkpoints embed it verbatim.
"""

import pytest

from repro.config.jobfile import JobFile
from repro.config.parameter import ParameterKind
from repro.core.spec import UNSPECIFIED, ExperimentSpec, default_favor
from repro.core.wayfinder import Wayfinder
from repro.cli import _spec_from_args, build_parser

from tests.conftest import SMALL_SPACE_OPTIONS


class TestValidation:
    def test_defaults_resolve(self):
        spec = ExperimentSpec()
        assert spec.os_name == "linux"
        assert spec.favor == "runtime"
        assert spec.favored_kinds == [ParameterKind.RUNTIME]
        assert spec.name == "linux-nginx-deeptune"

    def test_unikraft_normalization(self):
        spec = ExperimentSpec(os_name="unikraft", application="nginx", metric="auto")
        assert spec.application == "unikraft-nginx"
        assert spec.metric == "throughput"
        assert spec.favor is None

    @pytest.mark.parametrize("kwargs", [
        {"os_name": "plan9"},
        {"metric": "happiness"},
        {"algorithm": "magic"},
        {"favor": "everything"},
        {"iterations": 0},
        {"time_budget_s": -1.0},
        {"plateau_trials": 0},
        {"workers": 0},
        {"batch_size": 0},
    ])
    def test_invalid_inputs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentSpec(**kwargs)

    def test_explicit_none_favor_differs_from_unspecified(self):
        assert ExperimentSpec(favor=None).favor is None
        assert ExperimentSpec(favor=UNSPECIFIED).favor == "runtime"
        assert default_favor("unikraft") is None

    def test_unserializable_options_rejected_at_to_dict(self):
        spec = ExperimentSpec(algorithm_options={"model": object()})
        with pytest.raises(ValueError):
            spec.to_dict()


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = ExperimentSpec(application="redis", metric="throughput",
                              algorithm="bayesian", favor="runtime+boot",
                              seed=3, iterations=50, time_budget_s=3600.0,
                              plateau_trials=20, workers=4, batch_size=4,
                              frozen={"kernel.randomize_va_space": 2},
                              algorithm_options={"initial_random": 3},
                              space_options=SMALL_SPACE_OPTIONS)
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.to_dict() == spec.to_dict()

    def test_tuples_normalize_to_lists(self):
        spec = ExperimentSpec(algorithm_options={"hidden_dims": (24, 12)})
        assert spec.algorithm_options["hidden_dims"] == [24, 12]
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec.from_dict({"surprise": 1})

    def test_with_overrides_revalidates(self):
        spec = ExperimentSpec(iterations=10)
        assert spec.with_overrides(workers=4).workers == 4
        assert spec.with_overrides(workers=4).iterations == 10
        with pytest.raises(ValueError):
            spec.with_overrides(workers=0)
        with pytest.raises(ValueError):
            spec.with_overrides(surprise=1)


class TestFrontEndEquivalence:
    """CLI, JobFile, and Wayfinder must build identical specs for equal inputs."""

    def _cli_spec(self, *argv):
        args = build_parser().parse_args(["run"] + list(argv))
        return _spec_from_args(args)

    def test_cli_matches_wayfinder_constructor(self):
        cli = self._cli_spec("--application", "redis", "--metric", "throughput",
                             "--algorithm", "random", "--favor", "runtime",
                             "--seed", "5", "--iterations", "40",
                             "--workers", "2", "--batch-size", "2")
        api = Wayfinder.for_linux(application="redis", metric="throughput",
                                  algorithm="random", favor="runtime", seed=5,
                                  iterations=40, workers=2, batch_size=2).spec
        assert cli == api

    def test_cli_matches_jobfile(self, small_space):
        job = JobFile(name="linux-redis-random", os_name="linux",
                      application="redis", metric="throughput", bench_tool="wrk",
                      space=small_space, iterations=40, seed=5,
                      favor_kinds=["runtime"], workers=2, batch_size=2,
                      algorithm="random")
        cli = self._cli_spec("--application", "redis", "--metric", "throughput",
                             "--algorithm", "random", "--favor", "runtime",
                             "--seed", "5", "--iterations", "40",
                             "--workers", "2", "--batch-size", "2")
        assert job.to_spec() == cli

    def test_unikraft_defaults_agree(self):
        cli = self._cli_spec("--os", "unikraft", "--algorithm", "random",
                             "--iterations", "10", "--seed", "3")
        api = Wayfinder.for_unikraft(algorithm="random", seed=3,
                                     iterations=10).spec
        assert cli == api
        assert cli.favor is None

    def test_jobfile_favor_kind_combinations(self, small_space):
        def job_with(kinds):
            return JobFile(name="j", os_name="linux", application="nginx",
                           bench_tool="wrk", metric="throughput",
                           space=small_space, favor_kinds=kinds)

        assert job_with(["runtime", "boot"]).to_spec().favor == "runtime+boot"
        assert job_with([]).to_spec().favor == "runtime"  # linux default
        # combinations without an exact preset fall back to the first kind
        # (the historical CLI behaviour), loudly
        with pytest.warns(UserWarning, match="no exact favor preset"):
            assert job_with(["compile", "runtime"]).to_spec().favor == "compile"
        with pytest.raises(ValueError):
            job_with(["mystery"]).to_spec()

    def test_jobfile_round_trips_algorithm_and_plateau(self, tmp_path, small_space):
        from repro.config.jobfile import dump_job_file, load_job_file

        job = JobFile(name="j", os_name="linux", application="nginx",
                      bench_tool="wrk", metric="throughput", space=small_space,
                      algorithm="bayesian", plateau_trials=15)
        path = str(tmp_path / "job.yaml")
        dump_job_file(job, path)
        loaded = load_job_file(path)
        assert loaded.algorithm == "bayesian"
        assert loaded.plateau_trials == 15
        assert loaded.to_spec().plateau_trials == 15

    def test_wayfinder_consumes_only_the_spec(self):
        spec = ExperimentSpec(application="nginx", metric="throughput",
                              algorithm="random", seed=21,
                              space_options=SMALL_SPACE_OPTIONS,
                              frozen={"kernel.randomize_va_space": 2})
        wayfinder = Wayfinder.from_spec(spec)
        assert wayfinder.spec is spec
        assert wayfinder.algorithm.name == "random"
        assert wayfinder.space.frozen_parameters["kernel.randomize_va_space"] == 2
        assert wayfinder.workers == spec.workers
        session = wayfinder.build_session()
        assert session.spec is spec
        assert session.session.batch_size == spec.batch_size
