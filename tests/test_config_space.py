"""Unit tests for ConfigSpace and Configuration."""

import math
import random

import pytest

from repro.config.constraints import DependsOn
from repro.config.parameter import (
    BoolParameter,
    CategoricalParameter,
    IntParameter,
    ParameterKind,
)
from repro.config.space import Configuration, ConfigSpace


def build_space():
    return ConfigSpace(
        parameters=[
            BoolParameter("CONFIG_NET", ParameterKind.COMPILE_TIME, default=True),
            BoolParameter("CONFIG_INET", ParameterKind.COMPILE_TIME, default=True),
            IntParameter("net.core.somaxconn", ParameterKind.RUNTIME, default=128,
                         minimum=16, maximum=65535, log_scale=True),
            CategoricalParameter("boot.preempt", ParameterKind.BOOT_TIME,
                                 choices=("none", "voluntary", "full"),
                                 default="voluntary"),
        ],
        constraints=[DependsOn("CONFIG_INET", "CONFIG_NET")],
        name="unit-test-space",
    )


@pytest.fixture
def space():
    return build_space()


@pytest.fixture
def space_rng():
    return random.Random(42)


class TestConfigSpaceBasics:
    def test_duplicate_parameter_rejected(self, space):
        with pytest.raises(ValueError):
            space.add_parameter(BoolParameter("CONFIG_NET", ParameterKind.COMPILE_TIME))

    def test_constraint_with_unknown_parameter_rejected(self, space):
        with pytest.raises(KeyError):
            space.add_constraint(DependsOn("CONFIG_MISSING", "CONFIG_NET"))

    def test_lookup(self, space):
        assert "CONFIG_NET" in space
        assert space["CONFIG_NET"].default is True
        assert len(space) == 4

    def test_parameters_of_kind(self, space):
        runtime = space.parameters_of_kind(ParameterKind.RUNTIME)
        assert [p.name for p in runtime] == ["net.core.somaxconn"]

    def test_cardinality_counts_products(self, space):
        # 2 * 2 * 65520 * 3
        assert space.cardinality() == 2 * 2 * (65535 - 16 + 1) * 3
        assert math.isclose(space.log10_cardinality(),
                            math.log10(space.cardinality()), rel_tol=1e-9)

    def test_describe_groups_by_kind_and_type(self, space):
        counts = space.describe()
        assert counts["compile-time/bool"] == 2
        assert counts["runtime/int"] == 1
        assert counts["boot-time/categorical"] == 1


class TestConfiguration:
    def test_default_configuration_uses_defaults(self, space):
        default = space.default_configuration()
        assert default["CONFIG_NET"] is True
        assert default["net.core.somaxconn"] == 128

    def test_missing_value_rejected(self, space):
        with pytest.raises(KeyError):
            Configuration(space, {"CONFIG_NET": True})

    def test_unknown_parameter_rejected(self, space):
        values = space.default_configuration().as_dict()
        values["bogus"] = 1
        with pytest.raises(KeyError):
            Configuration(space, values)

    def test_with_values_clips(self, space):
        default = space.default_configuration()
        updated = default.with_values({"net.core.somaxconn": 10 ** 9})
        assert updated["net.core.somaxconn"] == 65535
        # original unchanged
        assert default["net.core.somaxconn"] == 128

    def test_equality_and_hash(self, space):
        first = space.default_configuration()
        second = space.default_configuration()
        assert first == second
        assert hash(first) == hash(second)
        third = first.with_values({"CONFIG_INET": False})
        assert first != third

    def test_differing_parameters(self, space):
        default = space.default_configuration()
        changed = default.with_values({"net.core.somaxconn": 4096, "CONFIG_INET": False})
        assert sorted(changed.differing_parameters(default)) == [
            "CONFIG_INET", "net.core.somaxconn"]

    def test_only_runtime_differs(self, space):
        default = space.default_configuration()
        runtime_only = default.with_values({"net.core.somaxconn": 4096})
        compile_change = default.with_values({"CONFIG_INET": False})
        assert runtime_only.only_runtime_differs(default)
        assert not compile_change.only_runtime_differs(default)

    def test_subset_by_kind(self, space):
        default = space.default_configuration()
        runtime = default.subset(ParameterKind.RUNTIME)
        assert runtime == {"net.core.somaxconn": 128}


class TestSamplingAndMutation:
    def test_sample_is_valid_per_parameter(self, space, space_rng):
        for _ in range(30):
            config = space.sample_configuration(space_rng)
            for parameter in space.parameters():
                assert parameter.validate(parameter.clip(config[parameter.name]))

    def test_mutation_changes_something(self, space, space_rng):
        default = space.default_configuration()
        mutated = space.mutate_configuration(default, space_rng, mutation_rate=0.5)
        assert mutated != default

    def test_mutation_respects_kind_filter(self, space, space_rng):
        default = space.default_configuration()
        for _ in range(20):
            mutated = space.mutate_configuration(
                default, space_rng, mutation_rate=1.0, kinds=[ParameterKind.RUNTIME])
            assert mutated.only_runtime_differs(default)

    def test_mutation_rate_out_of_range(self, space, space_rng):
        with pytest.raises(ValueError):
            space.mutate_configuration(space.default_configuration(), space_rng,
                                       mutation_rate=1.5)

    def test_coerce_fills_missing_and_clips(self, space):
        config = space.coerce({"net.core.somaxconn": 10 ** 9})
        assert config["net.core.somaxconn"] == 65535
        assert config["CONFIG_NET"] is True


class TestFreezing:
    def test_frozen_value_respected_by_sampling(self, space, space_rng):
        space.freeze("net.core.somaxconn", 512)
        for _ in range(10):
            assert space.sample_configuration(space_rng)["net.core.somaxconn"] == 512
        space.unfreeze("net.core.somaxconn")

    def test_freeze_invalid_value_clips_before_check(self, space):
        space.freeze("boot.preempt", "none")
        assert space.frozen_parameters == {"boot.preempt": "none"}
        space.unfreeze("boot.preempt")

    def test_subspace_keeps_relevant_constraints(self, space):
        sub = space.subspace(["CONFIG_NET", "CONFIG_INET"])
        assert len(sub) == 2
        assert len(sub.constraints) == 1
        sub_no_constraint = space.subspace(["CONFIG_INET"])
        assert len(sub_no_constraint.constraints) == 0


class TestValidityAndRepair:
    def test_violations_detected(self, space):
        config = space.default_configuration().with_values(
            {"CONFIG_NET": False, "CONFIG_INET": True})
        assert not space.is_valid(config)
        assert len(space.violations(config)) == 1

    def test_repair_resolves_dependency(self, space, space_rng):
        config = space.default_configuration().with_values(
            {"CONFIG_NET": False, "CONFIG_INET": True})
        repaired = space.repair(config, space_rng)
        assert space.is_valid(repaired)

    def test_valid_configuration_untouched_by_repair(self, space, space_rng):
        default = space.default_configuration()
        assert space.repair(default, space_rng) == default
