"""Batched multi-worker execution: equivalence, determinism, clock merging.

Three properties pin the batched engine to the historical sequential loop:

1. ``propose_batch(history, 1)`` behaves exactly like ``[propose(history)]``
   for every registered algorithm (same configuration, same RNG draws).
2. A ``workers=1, batch_size=1`` session reproduces the pre-refactor
   strictly sequential propose→evaluate→observe loop trial for trial (the
   reference loop is re-implemented inline below, exactly as the runner
   used to execute it).
3. With the same seed, ``workers=1`` and ``workers=4`` evaluate the same
   configurations for batch-native algorithms.  This holds because workers
   share one simulator (the measurement-noise stream is consumed in
   dispatch order) and algorithms observe in submission order; skip-build
   is disabled here since image reuse is inherently per-worker state that
   legitimately changes durations and build/boot-failure masking.
"""

from __future__ import annotations

import pytest

from repro.config.parameter import BoolParameter, ParameterKind
from repro.config.space import ConfigSpace
from repro.platform.executor import SerialBackend, WorkerPoolBackend, make_backend
from repro.platform.history import ExplorationHistory
from repro.platform.metrics import ThroughputMetric, metric_for_application
from repro.platform.runner import SearchSession
from repro.search.base import ConfigurationSampler
from repro.search.registry import available_algorithms, create_algorithm

from tests.conftest import make_pipeline, make_simulator
from tests.test_platform import make_record

#: per-algorithm options keeping the model-guided phases cheap but active.
ALGO_OPTIONS = {
    "random": {},
    "grid": {},
    "bayesian": {"initial_random": 3, "candidate_pool_size": 16},
    "unicorn": {"candidate_pool_size": 8, "top_k": 4},
    "deeptune": {"warmup_iterations": 3, "candidate_pool_size": 32,
                 "training_steps_per_iteration": 4, "hidden_dims": (24, 12),
                 "n_centroids": 8},
}

BATCH_NATIVE = ("random", "grid", "bayesian", "deeptune")


def _build_algorithm(name, space, seed=9):
    return create_algorithm(name, space, seed=seed,
                            favored_kinds=[ParameterKind.RUNTIME],
                            **ALGO_OPTIONS[name])


def _observed_history(space, algorithms, n=6, seed=123):
    """One shared history whose records every algorithm in *algorithms* observed."""
    sampler = ConfigurationSampler(space, seed=seed,
                                   favored_kinds=[ParameterKind.RUNTIME])
    history = ExplorationHistory(ThroughputMetric())
    for index in range(n):
        record = make_record(sampler.sample(), index, 50.0 + 10.0 * index,
                             crashed=(index == 2), started=index * 150.0)
        history.add(record)
        for algorithm in algorithms:
            algorithm.observe(record)
    return history


class TestProposeBatchContract:
    @pytest.mark.parametrize("name", sorted(ALGO_OPTIONS))
    def test_k1_matches_propose_cold(self, name, small_space):
        a = _build_algorithm(name, small_space)
        b = _build_algorithm(name, small_space)
        history = ExplorationHistory(ThroughputMetric())
        assert b.propose_batch(history, 1) == [a.propose(history)]

    @pytest.mark.parametrize("name", sorted(ALGO_OPTIONS))
    def test_k1_matches_propose_warm(self, name, small_space):
        a = _build_algorithm(name, small_space)
        b = _build_algorithm(name, small_space)
        history = _observed_history(small_space, [a, b])
        assert b.propose_batch(history, 1) == [a.propose(history)]

    @pytest.mark.parametrize("name", BATCH_NATIVE)
    def test_batch_is_distinct_and_fresh(self, name, small_space):
        algorithm = _build_algorithm(name, small_space)
        history = _observed_history(small_space, [algorithm])
        batch = algorithm.propose_batch(history, 4)
        assert len(batch) == 4
        assert len(set(batch)) == 4
        for configuration in batch:
            assert not history.contains_configuration(configuration)

    def test_rejects_empty_batch(self, small_space):
        algorithm = _build_algorithm("random", small_space)
        history = ExplorationHistory(ThroughputMetric())
        with pytest.raises(ValueError):
            algorithm.propose_batch(history, 0)

    def test_registry_covers_all_batch_options(self):
        assert set(ALGO_OPTIONS) == set(available_algorithms())

    def test_unicorn_stays_sequential(self, small_space):
        algorithm = _build_algorithm("unicorn", small_space)
        assert not algorithm.batch_native
        history = _observed_history(small_space, [algorithm])
        relearns_before = len(algorithm.iteration_stats)
        algorithm.propose_batch(history, 3)
        # one full causal-graph recomputation per proposal: the Figure 7
        # cost profile survives batching.
        assert len(algorithm.iteration_stats) == relearns_before + 3


def _reference_sequential_run(pipeline, algorithm, metric, iterations):
    """The pre-refactor SearchSession loop, verbatim: one trial at a time."""
    history = ExplorationHistory(metric)
    record = pipeline.evaluate(pipeline.space.default_configuration())
    history.add(record)
    algorithm.observe(record)
    completed = 1
    while completed < iterations:
        configuration = algorithm.propose(history)
        record = pipeline.evaluate(configuration)
        history.add(record)
        algorithm.observe(record)
        completed += 1
    return history


def _trial_tuple(record):
    return (record.index, record.configuration, record.objective,
            record.crashed, record.duration_s, record.started_at_s,
            record.build_skipped)


class TestSequentialEquivalence:
    @pytest.mark.parametrize("name", sorted(ALGO_OPTIONS))
    def test_batch1_worker1_reproduces_sequential_loop(self, name, small_linux_model):
        iterations = 6 if name == "unicorn" else 8
        metric = metric_for_application("nginx")

        reference = _reference_sequential_run(
            make_pipeline(small_linux_model, "nginx"),
            _build_algorithm(name, small_linux_model.space),
            metric, iterations)

        session = SearchSession(
            make_pipeline(small_linux_model, "nginx"),
            _build_algorithm(name, small_linux_model.space),
            metric, evaluate_default_first=True, batch_size=1)
        result = session.run(iterations=iterations)

        assert len(result.history) == len(reference) == iterations
        for ours, theirs in zip(result.history, reference):
            assert _trial_tuple(ours) == _trial_tuple(theirs)


class TestWorkerCountDeterminism:
    def _run(self, name, os_model, workers, batch_size, iterations=12):
        simulator = make_simulator(os_model, "nginx", seed=5)
        metric = metric_for_application("nginx")
        backend = make_backend(simulator, metric, workers=workers,
                               enable_skip_build=False)
        session = SearchSession(algorithm=_build_algorithm(name, os_model.space, seed=3),
                                metric=metric, backend=backend,
                                evaluate_default_first=True,
                                batch_size=batch_size)
        return session.run(iterations=iterations).history

    @pytest.mark.parametrize("name", BATCH_NATIVE)
    def test_worker_count_does_not_change_evaluated_set(self, name, small_linux_model):
        iterations = 9 if name in ("bayesian", "deeptune") else 13
        serial = self._run(name, small_linux_model, 1, 4, iterations)
        fleet = self._run(name, small_linux_model, 4, 4, iterations)
        assert len(serial) == len(fleet) == iterations
        assert (set(r.configuration for r in serial)
                == set(r.configuration for r in fleet))
        # stronger: same outcomes per configuration (shared-simulator RNG
        # stream is consumed in the same dispatch order).
        serial_outcomes = {r.configuration: (r.objective, r.crashed) for r in serial}
        fleet_outcomes = {r.configuration: (r.objective, r.crashed) for r in fleet}
        assert serial_outcomes == fleet_outcomes
        # and the fleet compresses the virtual time axis
        assert fleet[-1].finished_at_s < serial[-1].finished_at_s


class TestWorkerPoolBackend:
    def _pool(self, os_model, workers=2, enable_skip_build=True):
        simulator = make_simulator(os_model, "nginx", seed=7)
        metric = metric_for_application("nginx")
        return WorkerPoolBackend(simulator, metric, workers=workers,
                                 enable_skip_build=enable_skip_build)

    def _variants(self, space, n):
        default = space.default_configuration()
        return [default.with_values({"net.core.somaxconn": 128 + index})
                for index in range(n)]

    def test_requires_a_worker(self, small_linux_model):
        with pytest.raises(ValueError):
            self._pool(small_linux_model, workers=0)

    def test_batch_overlaps_in_virtual_time(self, small_linux_model):
        backend = self._pool(small_linux_model, workers=2)
        configurations = self._variants(small_linux_model.space, 4)
        records = backend.run_batch(configurations)
        # submission order is preserved in the returned list
        assert [r.configuration for r in records] == configurations
        # both workers start their first trial at the common barrier time
        assert sum(1 for r in records if r.started_at_s == 0.0) == 2
        assert {r.worker for r in records} == {0, 1}
        assert backend.trials_run == 4
        assert backend.now_s == max(backend.worker_clocks_s)
        assert backend.now_s < sum(r.duration_s for r in records)

    def test_barrier_syncs_clocks_between_batches(self, small_linux_model):
        backend = self._pool(small_linux_model, workers=2)
        first = backend.run_batch(self._variants(small_linux_model.space, 3))
        horizon = max(r.finished_at_s for r in first)
        second = backend.run_batch(self._variants(small_linux_model.space, 2))
        for record in second:
            assert record.started_at_s >= horizon

    def test_skip_build_state_is_per_worker(self, small_linux_model):
        backend = self._pool(small_linux_model, workers=2)
        # batch 1: each worker builds and boots its own image
        backend.run_batch(self._variants(small_linux_model.space, 2))
        # batch 2: runtime-only variants reuse each worker's running image
        records = backend.run_batch(self._variants(small_linux_model.space, 2))
        assert backend.builds_skipped == sum(
            pipeline.builds_skipped for pipeline in backend.pipelines)
        assert any(r.build_skipped for r in records)

    def test_history_add_batch_orders_by_completion(self, small_linux_model):
        backend = self._pool(small_linux_model, workers=2)
        records = backend.run_batch(self._variants(small_linux_model.space, 4))
        history = ExplorationHistory(metric_for_application("nginx"))
        ordered = history.add_batch(records)
        finished = [r.finished_at_s for r in ordered]
        assert finished == sorted(finished)
        assert [r.index for r in history] == list(range(4))
        assert set(ordered) == set(records)

    def test_serial_backend_mirrors_pipeline(self, small_linux_model):
        pipeline = make_pipeline(small_linux_model, "nginx")
        backend = SerialBackend(pipeline)
        configurations = self._variants(small_linux_model.space, 2)
        records = backend.run_batch(configurations)
        starts = [r.started_at_s for r in records]
        assert starts == sorted(starts)
        assert records[1].started_at_s == records[0].finished_at_s
        assert backend.now_s == pipeline.clock.now_s
        assert backend.workers == 1


class TestBatchedSession:
    def _session(self, os_model, workers, batch_size):
        simulator = make_simulator(os_model, "nginx", seed=11)
        metric = metric_for_application("nginx")
        backend = make_backend(simulator, metric, workers=workers)
        algorithm = _build_algorithm("random", os_model.space, seed=2)
        return SearchSession(algorithm=algorithm, metric=metric, backend=backend,
                             evaluate_default_first=True, batch_size=batch_size)

    def test_default_runs_first_and_alone(self, small_linux_model):
        session = self._session(small_linux_model, 4, 4)
        result = session.run(iterations=9)
        history = result.history
        default = small_linux_model.space.default_configuration()
        assert history[0].configuration == default
        assert history[0].started_at_s == 0.0
        for record in list(history)[1:]:
            assert record.started_at_s >= history[0].finished_at_s

    def test_iteration_budget_exact_with_ragged_batches(self, small_linux_model):
        result = self._session(small_linux_model, 4, 4).run(iterations=7)
        assert result.iterations == 7
        assert result.workers == 4
        assert result.batch_size == 4
        assert result.summary()["workers"] == 4

    def test_time_budget_overshoots_at_most_one_batch(self, small_linux_model):
        session = self._session(small_linux_model, 2, 2)
        result = session.run(time_budget_s=2500.0)
        history = result.history
        assert history.total_elapsed_s() >= 2500.0
        # every trial of the final batch started before the budget expired
        final_start = min(r.started_at_s for r in list(history)[-2:])
        assert final_start < 2500.0

    def test_run_rejects_bad_batch_size(self, small_linux_model):
        session = self._session(small_linux_model, 1, 1)
        with pytest.raises(ValueError):
            session.run(iterations=4, batch_size=0)


class TestSamplePoolDeduplication:
    def test_pool_avoids_explored_configurations(self):
        space = ConfigSpace([
            BoolParameter("flag_a", ParameterKind.RUNTIME, default=False),
            BoolParameter("flag_b", ParameterKind.RUNTIME, default=False),
        ], name="tiny")
        sampler = ConfigurationSampler(space, seed=1)
        history = ExplorationHistory(ThroughputMetric())
        # explore 3 of the 4 possible configurations
        default = space.default_configuration()
        for index, values in enumerate([{}, {"flag_a": True},
                                        {"flag_b": True}]):
            history.add(make_record(default.with_values(values), index, 1.0))
        pool = sampler.sample_pool(8, history=history, attempts_per_slot=64)
        assert len(pool) == 8
        unexplored = default.with_values({"flag_a": True, "flag_b": True})
        assert all(configuration == unexplored for configuration in pool)

    def test_without_history_behaviour_unchanged(self, small_space):
        a = ConfigurationSampler(small_space, seed=6)
        b = ConfigurationSampler(small_space, seed=6)
        assert a.sample_pool(5) == [b.sample() for _ in range(5)]
