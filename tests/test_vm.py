"""Unit tests for the simulated system under test (machine, failures, build, boot)."""

import random

import pytest

from repro.config.parameter import ParameterKind
from repro.vm.boot import BootSimulator
from repro.vm.build import BuildSimulator
from repro.vm.failures import FailureModel, FailureStage
from repro.vm.footprint import FootprintModel
from repro.vm.machine import PAPER_TESTBED, RISCV_EMBEDDED_BOARD, HardwareSpec
from repro.vm.simulator import SystemSimulator

from tests.conftest import make_simulator


class TestHardwareSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareSpec("bad", cores=0, frequency_ghz=2.0, ram_gb=4)
        with pytest.raises(ValueError):
            HardwareSpec("bad", cores=2, frequency_ghz=0, ram_gb=4)
        with pytest.raises(ValueError):
            HardwareSpec("bad", cores=2, frequency_ghz=2.0, ram_gb=0)

    def test_paper_testbed_dimensions(self):
        assert PAPER_TESTBED.cores == 24
        assert PAPER_TESTBED.frequency_ghz == pytest.approx(2.7)

    def test_emulated_board_is_slower(self):
        assert RISCV_EMBEDDED_BOARD.compute_scale < PAPER_TESTBED.compute_scale

    def test_numa_restriction(self):
        machine = HardwareSpec("dual", cores=48, frequency_ghz=2.7, ram_gb=128,
                               numa_nodes=2)
        node = machine.restrict_to_numa_node()
        assert node.cores == 24
        assert node.ram_gb == 64
        assert node.numa_nodes == 1


class TestFailureModel:
    @pytest.fixture(scope="class")
    def model_and_failures(self, small_linux_model):
        return small_linux_model, FailureModel(small_linux_model, seed=3)

    def test_default_configuration_never_fails(self, model_and_failures):
        os_model, failures = model_and_failures
        default = os_model.space.default_configuration()
        record = failures.evaluate(default, "nginx")
        assert not record.failed

    def test_disabling_essential_feature_fails(self, model_and_failures):
        os_model, failures = model_and_failures
        config = os_model.space.default_configuration().with_values({"CONFIG_NET": False})
        probability = failures.crash_probability(config, "nginx")
        assert probability > 0.9
        record = failures.evaluate(config, "nginx")
        assert record.failed

    def test_sqlite_does_not_need_the_network(self, model_and_failures):
        os_model, failures = model_and_failures
        config = os_model.space.default_configuration().with_values({"CONFIG_NET": False})
        # CONFIG_NET is not an essential feature of SQLite; the only remaining
        # hazards for this change are unrelated, so the probability stays low.
        assert failures.crash_probability(config, "sqlite") < 0.5

    def test_dangerous_runtime_value_raises_probability(self, model_and_failures):
        os_model, failures = model_and_failures
        default = os_model.space.default_configuration()
        risky = default.with_values({"vm.min_free_kbytes": 4_000_000})
        assert failures.crash_probability(risky, "nginx") > \
            failures.crash_probability(default, "nginx")

    def test_failure_stage_ordering(self, model_and_failures):
        os_model, failures = model_and_failures
        config = os_model.space.default_configuration().with_values(
            {"CONFIG_KASAN": True, "CONFIG_DEBUG_KERNEL": True})
        record = failures.evaluate(config, "nginx")
        if record.failed:
            assert record.stage in (FailureStage.BUILD, FailureStage.BOOT, FailureStage.RUN)

    def test_deterministic(self, model_and_failures, rng):
        os_model, failures = model_and_failures
        config = os_model.space.sample_configuration(rng)
        first = failures.evaluate(config, "nginx")
        second = failures.evaluate(config, "nginx")
        assert first.stage == second.stage

    def test_random_runtime_crash_rate_near_one_third(self, small_linux_model):
        failures = FailureModel(small_linux_model, seed=3)
        space = small_linux_model.space
        rng = random.Random(17)
        default = space.default_configuration()
        crashed = 0
        trials = 250
        for _ in range(trials):
            config = space.mutate_configuration(default, rng, mutation_rate=1.0,
                                                 kinds=[ParameterKind.RUNTIME])
            crashed += failures.evaluate(config, "nginx").failed
        rate = crashed / trials
        assert 0.2 <= rate <= 0.5

    def test_unikraft_hazards(self, unikraft_model):
        failures = FailureModel(unikraft_model, seed=3)
        default = unikraft_model.space.default_configuration()
        assert not failures.evaluate(default, "unikraft-nginx").failed
        tiny_heap = default.with_values({"uk.heap_pages": 1024})
        assert failures.crash_probability(tiny_heap, "unikraft-nginx") > 0.5


class TestFootprintModel:
    def test_default_footprint_in_expected_band(self, small_linux_model):
        footprint = FootprintModel(small_linux_model)
        default = small_linux_model.space.default_configuration()
        assert 180.0 <= footprint.footprint_mb(default) <= 260.0

    def test_disabling_features_reduces_footprint(self, small_linux_model):
        footprint = FootprintModel(small_linux_model)
        default = small_linux_model.space.default_configuration()
        slim = default.with_values({
            "CONFIG_KALLSYMS": False, "CONFIG_FTRACE": False, "CONFIG_MODULES": False,
            "CONFIG_CGROUPS": False, "CONFIG_MEMCG": False, "CONFIG_AUDIT": False,
        })
        assert footprint.footprint_mb(slim) < footprint.footprint_mb(default)

    def test_hugepage_reservation_increases_footprint(self, small_linux_model):
        footprint = FootprintModel(small_linux_model)
        default = small_linux_model.space.default_configuration()
        hugepages = default.with_values({"vm.nr_hugepages": 64})
        assert footprint.footprint_mb(hugepages) > footprint.footprint_mb(default) + 100

    def test_image_size_positive(self, small_linux_model):
        footprint = FootprintModel(small_linux_model)
        default = small_linux_model.space.default_configuration()
        assert footprint.image_size_mb(default) > 0


class TestBuildAndBoot:
    def test_build_duration_scales_with_debug_info(self, small_linux_model):
        failures = FailureModel(small_linux_model, seed=3)
        build = BuildSimulator(small_linux_model, failures)
        default = small_linux_model.space.default_configuration()
        with_debug = default.with_values({"CONFIG_DEBUG_INFO": True})
        assert build.estimate_duration(with_debug) > build.estimate_duration(default)

    def test_successful_build_has_image(self, small_linux_model):
        failures = FailureModel(small_linux_model, seed=3)
        build = BuildSimulator(small_linux_model, failures)
        result = build.build(small_linux_model.space.default_configuration(), "nginx")
        assert result.success
        assert result.image_size_mb > 0
        assert result.duration_s > 0

    def test_boot_produces_procfs_with_runtime_values(self, small_linux_model):
        failures = FailureModel(small_linux_model, seed=3)
        boot = BootSimulator(small_linux_model, failures)
        config = small_linux_model.space.default_configuration().with_values(
            {"net.core.somaxconn": 4096})
        result = boot.boot(config, "nginx")
        assert result.success
        assert result.memory_mb > 0
        assert result.procfs is not None
        assert result.procfs.read("net.core.somaxconn") == "4096"

    def test_boot_failure_when_virtio_missing(self, small_linux_model):
        failures = FailureModel(small_linux_model, seed=3)
        boot = BootSimulator(small_linux_model, failures)
        config = small_linux_model.space.default_configuration().with_values(
            {"CONFIG_VIRTIO_PCI": False})
        result = boot.boot(config, "nginx")
        assert not result.success
        assert result.reason

    def test_unikernel_builds_faster_than_linux(self, small_linux_model, unikraft_model):
        linux_failures = FailureModel(small_linux_model, seed=3)
        uk_failures = FailureModel(unikraft_model, seed=3)
        linux_build = BuildSimulator(small_linux_model, linux_failures)
        uk_build = BuildSimulator(unikraft_model, uk_failures)
        assert uk_build.estimate_duration(unikraft_model.space.default_configuration()) < \
            linux_build.estimate_duration(small_linux_model.space.default_configuration())


class TestSystemSimulator:
    def test_default_evaluation_succeeds(self, small_linux_model):
        simulator = make_simulator(small_linux_model, "nginx")
        outcome = simulator.evaluate(small_linux_model.space.default_configuration())
        assert not outcome.crashed
        assert outcome.metric_value > 0
        assert outcome.total_duration_s > 60

    def test_reuse_image_is_much_faster(self, small_linux_model):
        simulator = make_simulator(small_linux_model, "nginx")
        default = small_linux_model.space.default_configuration()
        full = simulator.evaluate(default)
        reused = simulator.evaluate(default, reuse_image=True)
        assert reused.total_duration_s < full.total_duration_s / 2
        assert reused.build_skipped

    def test_crashed_run_reports_stage(self, small_linux_model):
        simulator = make_simulator(small_linux_model, "nginx")
        config = small_linux_model.space.default_configuration().with_values(
            {"CONFIG_NET": False, "CONFIG_INET": False, "CONFIG_VIRTIO_NET": False})
        outcome = simulator.evaluate(config)
        assert outcome.crashed
        assert outcome.failure_stage is not FailureStage.NONE
        assert outcome.metric_value is None

    def test_crash_probability_exposed(self, small_linux_model):
        simulator = make_simulator(small_linux_model, "nginx")
        default = small_linux_model.space.default_configuration()
        assert 0.0 <= simulator.crash_probability(default) < 0.2
