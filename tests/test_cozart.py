"""Unit tests for the Cozart-style debloater."""

import pytest

from repro.apps.nginx import NginxApplication
from repro.config.parameter import ParameterKind
from repro.cozart.debloat import CozartDebloater
from repro.cozart.trace import trace_workload
from repro.vm.footprint import FootprintModel


class TestTrace:
    def test_essential_features_are_exercised(self, small_linux_model):
        trace = trace_workload(small_linux_model, "nginx")
        for name in small_linux_model.essential_for("nginx"):
            assert trace.exercises(name)

    def test_debug_features_not_exercised(self, small_linux_model):
        trace = trace_workload(small_linux_model, "nginx")
        for name in ("CONFIG_KASAN", "CONFIG_DEBUG_INFO", "CONFIG_LOCKDEP"):
            assert not trace.exercises(name)

    def test_deterministic(self, small_linux_model):
        first = trace_workload(small_linux_model, "redis")
        second = trace_workload(small_linux_model, "redis")
        assert first.exercised_options == second.exercised_options

    def test_traces_differ_between_applications(self, small_linux_model):
        nginx = trace_workload(small_linux_model, "nginx")
        npb = trace_workload(small_linux_model, "npb")
        assert nginx.exercised_options != npb.exercised_options


class TestDebloater:
    @pytest.fixture(scope="class")
    def debloat_result(self, small_linux_model):
        return CozartDebloater(small_linux_model, seed=1).debloat("nginx")

    def test_some_options_disabled(self, debloat_result):
        assert debloat_result.disabled_count > 0
        assert debloat_result.kept_options

    def test_baseline_is_constraint_valid(self, small_linux_model, debloat_result):
        assert small_linux_model.space.is_valid(debloat_result.baseline)

    def test_essential_features_still_enabled(self, small_linux_model, debloat_result):
        for name in small_linux_model.essential_for("nginx"):
            assert debloat_result.baseline[name] in (True, "y", "m")

    def test_baseline_reduces_memory_footprint(self, small_linux_model, debloat_result):
        footprint = FootprintModel(small_linux_model)
        default = small_linux_model.space.default_configuration()
        assert footprint.footprint_mb(debloat_result.baseline) < \
            footprint.footprint_mb(default)

    def test_baseline_does_not_hurt_performance(self, small_linux_model, debloat_result):
        app = NginxApplication()
        default = small_linux_model.space.default_configuration()
        ratio = app.performance(debloat_result.baseline) / app.performance(default)
        assert ratio >= 0.98

    def test_reduced_space_freezes_compile_options(self, small_linux_model, debloat_result):
        reduced = debloat_result.reduced_space
        frozen = reduced.frozen_parameters
        for parameter in reduced.parameters_of_kind(ParameterKind.COMPILE_TIME):
            assert parameter.name in frozen
        # Runtime parameters stay searchable.
        for parameter in reduced.parameters_of_kind(ParameterKind.RUNTIME):
            assert parameter.name not in frozen

    def test_reduced_space_samples_keep_debloated_values(self, small_linux_model,
                                                         debloat_result, rng):
        reduced = debloat_result.reduced_space
        sample = reduced.sample_configuration(rng)
        for name in debloat_result.disabled_options:
            assert sample[name] == debloat_result.baseline[name]
