"""Tests for the JSON results store and session resumption."""

import os

import pytest

from repro.config.parameter import ParameterKind
from repro.platform.metrics import LatencyMetric
from repro.platform.results import ResultsStore, record_from_dict, record_to_dict

from tests.conftest import SMALL_SPACE_OPTIONS, make_pipeline
from tests.test_platform import make_record


class TestRecordSerialization:
    def test_roundtrip(self, small_space):
        record = make_record(small_space.default_configuration(), index=3,
                             objective=123.4)
        data = record_to_dict(record)
        restored = record_from_dict(data, small_space)
        assert restored.index == 3
        assert restored.objective == 123.4
        assert restored.configuration == record.configuration
        assert restored.crashed is False

    def test_crashed_record_roundtrip(self, small_space):
        record = make_record(small_space.default_configuration(), index=1, crashed=True)
        restored = record_from_dict(record_to_dict(record), small_space)
        assert restored.crashed
        assert restored.objective is None

    def test_worker_attribution_roundtrip(self, small_space):
        record = make_record(small_space.default_configuration(), index=2,
                             objective=5.0)
        record.worker = 3
        restored = record_from_dict(record_to_dict(record), small_space)
        assert restored.worker == 3
        # histories saved before the worker field existed load as worker 0
        legacy = record_to_dict(record)
        del legacy["worker"]
        assert record_from_dict(legacy, small_space).worker == 0


class TestResultsStore:
    def make_history(self, small_linux_model, iterations=8):
        pipeline = make_pipeline(small_linux_model, "nginx")
        from repro.search.random_search import RandomSearch
        from repro.platform.runner import SearchSession

        algorithm = RandomSearch(small_linux_model.space, seed=2,
                                 favored_kinds=[ParameterKind.RUNTIME])
        return SearchSession(pipeline, algorithm).run(iterations=iterations).history

    def test_save_list_load(self, tmp_path, small_linux_model):
        history = self.make_history(small_linux_model)
        store = ResultsStore(str(tmp_path))
        path = store.save_history("nginx-random", history,
                                  metadata={"application": "nginx"})
        assert os.path.exists(path)
        assert store.list_histories() == ["nginx-random"]

        loaded = store.load_history("nginx-random", small_linux_model.space)
        assert len(loaded) == len(history)
        assert loaded.best_objective() == pytest.approx(history.best_objective())
        assert [r.crashed for r in loaded] == [r.crashed for r in history]

        metadata = store.load_metadata("nginx-random")
        assert metadata["metadata"]["application"] == "nginx"
        assert metadata["summary"]["trials"] == len(history)

    def test_load_with_explicit_metric(self, tmp_path, small_linux_model):
        history = self.make_history(small_linux_model)
        store = ResultsStore(str(tmp_path))
        store.save_history("run", history)
        loaded = store.load_history("run", small_linux_model.space,
                                    metric=LatencyMetric())
        assert loaded.metric.direction == "minimize"

    def test_export_csv(self, tmp_path, small_linux_model):
        history = self.make_history(small_linux_model)
        store = ResultsStore(str(tmp_path))
        store.save_history("run", history)
        csv_path = str(tmp_path / "run.csv")
        store.export_csv("run", csv_path, parameters=["net.core.somaxconn"])
        with open(csv_path) as handle:
            lines = handle.read().splitlines()
        assert len(lines) == len(history) + 1
        assert "net.core.somaxconn" in lines[0]

    def test_unsupported_version_rejected(self, tmp_path, small_linux_model):
        store = ResultsStore(str(tmp_path))
        history = self.make_history(small_linux_model, iterations=2)
        path = store.save_history("run", history)
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text.replace('"format_version": 1', '"format_version": 99'))
        with pytest.raises(ValueError):
            store.load_history("run", small_linux_model.space)


class TestSessionSummary:
    """SessionResult.summary() must fully describe the run's budget shape."""

    def _session(self, small_linux_model, favor=None):
        from repro.search.random_search import RandomSearch
        from repro.platform.runner import SearchSession

        algorithm = RandomSearch(small_linux_model.space, seed=2,
                                 favored_kinds=[ParameterKind.RUNTIME])
        return SearchSession(make_pipeline(small_linux_model, "nginx"),
                             algorithm, favor=favor)

    def test_summary_records_time_budget_and_favor(self, small_linux_model):
        result = self._session(small_linux_model, favor="runtime").run(
            time_budget_s=1500.0)
        summary = result.summary()
        assert summary["time_budget_s"] == 1500.0
        assert summary["favor"] == "runtime"
        assert summary["stop_reason"] == "time-budget"

    def test_summary_null_fields_for_iteration_runs(self, small_linux_model):
        summary = self._session(small_linux_model).run(iterations=3).summary()
        assert summary["time_budget_s"] is None
        assert summary["favor"] is None
        assert summary["stop_reason"] == "iterations"

    def test_stored_metadata_describes_the_run(self, tmp_path, small_linux_model):
        result = self._session(small_linux_model, favor="runtime").run(iterations=4)
        store = ResultsStore(str(tmp_path))
        store.save_history("run", result.history, metadata=result.summary())
        metadata = store.load_metadata("run")["metadata"]
        assert metadata["favor"] == "runtime"
        assert metadata["time_budget_s"] is None
        assert metadata["workers"] == 1


class TestCheckpointResumePath:
    """The checkpoint path replaced the removed observation-replay helper.

    ``resume_session`` (replay stored observations into a fresh algorithm)
    could not restore RNG streams, worker clocks, or skip-build state; these
    tests pin its checkpoint-based replacement: the stored checkpoint fully
    restores the algorithm's observation state and the continued run stays
    on the original trajectory.
    """

    def _spec(self):
        from repro.core.spec import ExperimentSpec

        return ExperimentSpec(
            application="nginx", metric="throughput", algorithm="bayesian",
            seed=4, iterations=6, space_options=SMALL_SPACE_OPTIONS,
            algorithm_options={"initial_random": 2, "candidate_pool_size": 8},
            name="store-resume")

    def test_resume_session_helper_is_gone(self):
        import repro.platform.results as results

        assert not hasattr(results, "resume_session")

    def test_checkpoint_restores_algorithm_observations(self, tmp_path):
        from repro.core.wayfinder import Wayfinder

        wayfinder = Wayfinder.from_spec(self._spec())
        store = ResultsStore(str(tmp_path))
        wayfinder.enable_checkpointing(store, name="store-resume")
        wayfinder.specialize()
        resumed = Wayfinder.resume(store.checkpoint_path("store-resume"))
        # the restored algorithm carries every stored observation, where the
        # replay helper only ever reached the non-crashed subset of records
        assert len(resumed.algorithm._X) == 6
        history = resumed.build_session().session.history
        assert resumed.algorithm.propose(history) is not None

    def test_extended_budget_continues_the_trajectory(self, tmp_path):
        from repro.core.wayfinder import Wayfinder

        wayfinder = Wayfinder.from_spec(self._spec())
        store = ResultsStore(str(tmp_path))
        wayfinder.enable_checkpointing(store, name="store-resume")
        first = wayfinder.specialize()
        prefix = [(r.index, r.configuration, r.objective)
                  for r in first.history]
        extended = Wayfinder.resume(
            store.checkpoint_path("store-resume")).specialize(iterations=9)
        assert extended.iterations == 9
        assert [(r.index, r.configuration, r.objective)
                for r in extended.history][:6] == prefix
