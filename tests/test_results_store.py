"""Tests for the JSON results store and session resumption."""

import os

import pytest

from repro.config.parameter import ParameterKind
from repro.platform.metrics import LatencyMetric
from repro.platform.results import (
    ResultsStore,
    cleanup_stale_tmp_files,
    record_from_dict,
    record_to_dict,
)

from tests.conftest import SMALL_SPACE_OPTIONS, make_pipeline
from tests.test_platform import make_record


class TestRecordSerialization:
    def test_roundtrip(self, small_space):
        record = make_record(small_space.default_configuration(), index=3,
                             objective=123.4)
        data = record_to_dict(record)
        restored = record_from_dict(data, small_space)
        assert restored.index == 3
        assert restored.objective == 123.4
        assert restored.configuration == record.configuration
        assert restored.crashed is False

    def test_crashed_record_roundtrip(self, small_space):
        record = make_record(small_space.default_configuration(), index=1, crashed=True)
        restored = record_from_dict(record_to_dict(record), small_space)
        assert restored.crashed
        assert restored.objective is None

    def test_worker_attribution_roundtrip(self, small_space):
        record = make_record(small_space.default_configuration(), index=2,
                             objective=5.0)
        record.worker = 3
        restored = record_from_dict(record_to_dict(record), small_space)
        assert restored.worker == 3
        # histories saved before the worker field existed load as worker 0
        legacy = record_to_dict(record)
        del legacy["worker"]
        assert record_from_dict(legacy, small_space).worker == 0


class TestResultsStore:
    def make_history(self, small_linux_model, iterations=8):
        pipeline = make_pipeline(small_linux_model, "nginx")
        from repro.search.random_search import RandomSearch
        from repro.platform.runner import SearchSession

        algorithm = RandomSearch(small_linux_model.space, seed=2,
                                 favored_kinds=[ParameterKind.RUNTIME])
        return SearchSession(pipeline, algorithm).run(iterations=iterations).history

    def test_save_list_load(self, tmp_path, small_linux_model):
        history = self.make_history(small_linux_model)
        store = ResultsStore(str(tmp_path))
        path = store.save_history("nginx-random", history,
                                  metadata={"application": "nginx"})
        assert os.path.exists(path)
        assert store.list_histories() == ["nginx-random"]

        loaded = store.load_history("nginx-random", small_linux_model.space)
        assert len(loaded) == len(history)
        assert loaded.best_objective() == pytest.approx(history.best_objective())
        assert [r.crashed for r in loaded] == [r.crashed for r in history]

        metadata = store.load_metadata("nginx-random")
        assert metadata["metadata"]["application"] == "nginx"
        assert metadata["summary"]["trials"] == len(history)

    def test_load_with_explicit_metric(self, tmp_path, small_linux_model):
        history = self.make_history(small_linux_model)
        store = ResultsStore(str(tmp_path))
        store.save_history("run", history)
        loaded = store.load_history("run", small_linux_model.space,
                                    metric=LatencyMetric())
        assert loaded.metric.direction == "minimize"

    def test_export_csv(self, tmp_path, small_linux_model):
        history = self.make_history(small_linux_model)
        store = ResultsStore(str(tmp_path))
        store.save_history("run", history)
        csv_path = str(tmp_path / "run.csv")
        store.export_csv("run", csv_path, parameters=["net.core.somaxconn"])
        with open(csv_path) as handle:
            lines = handle.read().splitlines()
        assert len(lines) == len(history) + 1
        assert "net.core.somaxconn" in lines[0]

    def test_unsupported_version_rejected(self, tmp_path, small_linux_model):
        store = ResultsStore(str(tmp_path))
        history = self.make_history(small_linux_model, iterations=2)
        path = store.save_history("run", history)
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text.replace('"format_version": 3', '"format_version": 99'))
        with pytest.raises(ValueError):
            store.load_history("run", small_linux_model.space)


class TestCrashSafety:
    """Atomic writes, orphaned-staging cleanup, and corruption fallback."""

    def _checkpointed_store(self, tmp_path, name="crash", iterations=4):
        from repro.core.spec import ExperimentSpec
        from repro.core.wayfinder import Wayfinder

        spec = ExperimentSpec(
            application="nginx", metric="throughput", algorithm="random",
            seed=2, iterations=iterations, space_options=SMALL_SPACE_OPTIONS,
            name=name)
        store = ResultsStore(str(tmp_path))
        wayfinder = Wayfinder.from_spec(spec)
        wayfinder.enable_checkpointing(store, name=name, every=1)
        wayfinder.specialize()
        return store

    def test_history_write_leaves_no_staging_file(self, tmp_path,
                                                  small_linux_model):
        store = ResultsStore(str(tmp_path))
        history = TestResultsStore().make_history(small_linux_model,
                                                  iterations=2)
        store.save_history("run", history)
        leftovers = [entry for entry in os.listdir(str(tmp_path))
                     if entry.endswith(".tmp")]
        assert leftovers == []

    def test_stale_tmp_files_cleaned_on_open(self, tmp_path):
        # a crashed writer's staging file (dead pid) and a legacy .tmp
        # without a pid are swept; a live writer's staging is left alone
        dead = str(tmp_path / "run.json.999999.tmp")
        legacy = str(tmp_path / "run.json.tmp")
        live = str(tmp_path / "run.json.{}.tmp".format(os.getpid()))
        for path in (dead, legacy, live):
            with open(path, "w") as handle:
                handle.write("{")
        removed = cleanup_stale_tmp_files(str(tmp_path))
        assert sorted(removed) == ["run.json.999999.tmp", "run.json.tmp"]
        assert not os.path.exists(dead) and not os.path.exists(legacy)
        assert os.path.exists(live)
        os.remove(live)
        # opening a store performs the same sweep
        with open(dead, "w") as handle:
            handle.write("{")
        ResultsStore(str(tmp_path))
        assert not os.path.exists(dead)

    def test_checkpoint_keeps_rolling_backup(self, tmp_path):
        store = self._checkpointed_store(tmp_path)
        assert os.path.exists(store.checkpoint_path("crash"))
        # several checkpoints were saved (every=1), so the previous one
        # survives as the rolling backup — and is itself loadable
        backup = store.checkpoint_backup_path("crash")
        assert os.path.exists(backup)
        from repro.platform.results import load_checkpoint_file

        assert load_checkpoint_file(backup)["kind"] == "checkpoint"

    def test_truncated_checkpoint_falls_back_to_backup(self, tmp_path):
        store = self._checkpointed_store(tmp_path)
        path = store.checkpoint_path("crash")
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text[:len(text) // 2])  # torn write
        recovered = store.latest_valid_checkpoint("crash")
        assert recovered == path
        # the backup was promoted in place of the torn file, which was set
        # aside for forensics rather than silently deleted
        from repro.platform.results import load_checkpoint_file

        assert load_checkpoint_file(recovered)["kind"] == "checkpoint"
        corrupt = os.path.join(str(tmp_path),
                               "crash" + store.CHECKPOINT_CORRUPT_SUFFIX)
        assert os.path.exists(corrupt)
        assert not os.path.exists(store.checkpoint_backup_path("crash"))

    def test_all_checkpoints_corrupt_means_fresh_start(self, tmp_path):
        store = self._checkpointed_store(tmp_path)
        for path in (store.checkpoint_path("crash"),
                     store.checkpoint_backup_path("crash")):
            with open(path, "w") as handle:
                handle.write("{\"kind\": \"checkpo")
        assert store.latest_valid_checkpoint("crash") is None

    def test_no_checkpoint_is_not_an_error(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        assert store.latest_valid_checkpoint("never-ran") is None

    def test_backup_and_corrupt_files_hidden_from_listings(self, tmp_path):
        store = self._checkpointed_store(tmp_path)
        path = store.checkpoint_path("crash")
        with open(path, "w") as handle:
            handle.write("torn")
        store.latest_valid_checkpoint("crash")  # creates the .corrupt file
        assert store.list_checkpoints() == ["crash"]
        # neither the rolling backup nor the set-aside corrupt file leaks
        # into the history listing (no history was ever saved here)
        assert store.list_histories() == []


class TestSessionSummary:
    """SessionResult.summary() must fully describe the run's budget shape."""

    def _session(self, small_linux_model, favor=None):
        from repro.search.random_search import RandomSearch
        from repro.platform.runner import SearchSession

        algorithm = RandomSearch(small_linux_model.space, seed=2,
                                 favored_kinds=[ParameterKind.RUNTIME])
        return SearchSession(make_pipeline(small_linux_model, "nginx"),
                             algorithm, favor=favor)

    def test_summary_records_time_budget_and_favor(self, small_linux_model):
        result = self._session(small_linux_model, favor="runtime").run(
            time_budget_s=1500.0)
        summary = result.summary()
        assert summary["time_budget_s"] == 1500.0
        assert summary["favor"] == "runtime"
        assert summary["stop_reason"] == "time-budget"

    def test_summary_null_fields_for_iteration_runs(self, small_linux_model):
        summary = self._session(small_linux_model).run(iterations=3).summary()
        assert summary["time_budget_s"] is None
        assert summary["favor"] is None
        assert summary["stop_reason"] == "iterations"

    def test_stored_metadata_describes_the_run(self, tmp_path, small_linux_model):
        result = self._session(small_linux_model, favor="runtime").run(iterations=4)
        store = ResultsStore(str(tmp_path))
        store.save_history("run", result.history, metadata=result.summary())
        metadata = store.load_metadata("run")["metadata"]
        assert metadata["favor"] == "runtime"
        assert metadata["time_budget_s"] is None
        assert metadata["workers"] == 1


class TestCheckpointResumePath:
    """The checkpoint path replaced the removed observation-replay helper.

    ``resume_session`` (replay stored observations into a fresh algorithm)
    could not restore RNG streams, worker clocks, or skip-build state; these
    tests pin its checkpoint-based replacement: the stored checkpoint fully
    restores the algorithm's observation state and the continued run stays
    on the original trajectory.
    """

    def _spec(self):
        from repro.core.spec import ExperimentSpec

        return ExperimentSpec(
            application="nginx", metric="throughput", algorithm="bayesian",
            seed=4, iterations=6, space_options=SMALL_SPACE_OPTIONS,
            algorithm_options={"initial_random": 2, "candidate_pool_size": 8},
            name="store-resume")

    def test_resume_session_helper_is_gone(self):
        import repro.platform.results as results

        assert not hasattr(results, "resume_session")

    def test_checkpoint_restores_algorithm_observations(self, tmp_path):
        from repro.core.wayfinder import Wayfinder

        wayfinder = Wayfinder.from_spec(self._spec())
        store = ResultsStore(str(tmp_path))
        wayfinder.enable_checkpointing(store, name="store-resume")
        wayfinder.specialize()
        resumed = Wayfinder.resume(store.checkpoint_path("store-resume"))
        # the restored algorithm carries every stored observation, where the
        # replay helper only ever reached the non-crashed subset of records
        assert len(resumed.algorithm._X) == 6
        history = resumed.build_session().session.history
        assert resumed.algorithm.propose(history) is not None

    def test_extended_budget_continues_the_trajectory(self, tmp_path):
        from repro.core.wayfinder import Wayfinder

        wayfinder = Wayfinder.from_spec(self._spec())
        store = ResultsStore(str(tmp_path))
        wayfinder.enable_checkpointing(store, name="store-resume")
        first = wayfinder.specialize()
        prefix = [(r.index, r.configuration, r.objective)
                  for r in first.history]
        extended = Wayfinder.resume(
            store.checkpoint_path("store-resume")).specialize(iterations=9)
        assert extended.iterations == 9
        assert [(r.index, r.configuration, r.objective)
                for r in extended.history][:6] == prefix
