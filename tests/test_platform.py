"""Unit tests for the benchmarking platform: metrics, history, pipeline, runner."""

import pytest

from repro.config.parameter import ParameterKind
from repro.platform.history import ExplorationHistory, TrialRecord
from repro.platform.metrics import (
    CompositeScoreMetric,
    LatencyMetric,
    MemoryFootprintMetric,
    ThroughputMetric,
    metric_for_application,
)
from repro.platform.pipeline import BenchmarkingPipeline, VirtualClock
from repro.platform.runner import SearchSession
from repro.search.random_search import RandomSearch
from repro.vm.failures import FailureStage
from repro.vm.simulator import EvaluationOutcome

from tests.conftest import make_pipeline, make_simulator


def make_outcome(configuration, metric_value=100.0, memory=200.0, crashed=False):
    return EvaluationOutcome(
        configuration=configuration,
        crashed=crashed,
        failure_stage=FailureStage.RUN if crashed else FailureStage.NONE,
        failure_reason="boom" if crashed else "",
        metric_value=None if crashed else metric_value,
        memory_mb=None if crashed else memory,
        build_duration_s=100.0,
        boot_duration_s=10.0,
        run_duration_s=40.0,
        build_skipped=False,
    )


def make_record(configuration, index=0, objective=100.0, crashed=False,
                duration=150.0, started=0.0):
    return TrialRecord(
        index=index,
        configuration=configuration,
        objective=None if crashed else objective,
        crashed=crashed,
        failure_stage=FailureStage.RUN if crashed else FailureStage.NONE,
        failure_reason="",
        metric_value=None if crashed else objective,
        memory_mb=None if crashed else 200.0,
        duration_s=duration,
        started_at_s=started,
    )


class TestMetrics:
    def test_throughput_direction(self, default_configuration):
        metric = ThroughputMetric()
        assert metric.maximize
        assert metric.extract(make_outcome(default_configuration, 500.0)) == 500.0
        assert metric.extract(make_outcome(default_configuration, crashed=True)) is None
        assert metric.is_improvement(2.0, 1.0)
        assert metric.worst_value() == float("-inf")

    def test_latency_direction(self, default_configuration):
        metric = LatencyMetric()
        assert not metric.maximize
        assert metric.is_improvement(1.0, 2.0)
        assert metric.worst_value() == float("inf")

    def test_memory_metric_reads_footprint(self, default_configuration):
        metric = MemoryFootprintMetric()
        assert metric.extract(make_outcome(default_configuration, memory=321.0)) == 321.0

    def test_improvement_with_none_incumbent(self):
        assert ThroughputMetric().is_improvement(1.0, None)

    def test_composite_score_prefers_high_throughput_low_memory(self, default_configuration):
        metric = CompositeScoreMetric(throughput_range=(0, 100), memory_range=(0, 100))
        good = metric.score(90.0, 10.0)
        bad = metric.score(10.0, 90.0)
        assert good > bad

    def test_composite_score_extract_none_on_crash(self, default_configuration):
        metric = CompositeScoreMetric()
        assert metric.extract(make_outcome(default_configuration, crashed=True)) is None

    def test_metric_for_application(self):
        assert metric_for_application("sqlite").direction == "minimize"
        assert metric_for_application("nginx").direction == "maximize"


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        assert clock.now_s == 0.0
        clock.advance(10.5)
        assert clock.now_s == 10.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestExplorationHistory:
    def test_best_record_maximize(self, small_space):
        history = ExplorationHistory(ThroughputMetric())
        default = small_space.default_configuration()
        history.add(make_record(default, 0, 100.0))
        history.add(make_record(default.with_values({"vm.swappiness": 1}), 1, 250.0,
                                started=150.0))
        history.add(make_record(default.with_values({"vm.swappiness": 2}), 2, crashed=True,
                                started=300.0))
        best = history.best_record()
        assert best.index == 1
        assert history.best_objective() == 250.0
        assert history.crash_rate() == pytest.approx(1 / 3)
        assert history.time_to_best_s() == pytest.approx(300.0)

    def test_best_record_minimize(self, small_space):
        history = ExplorationHistory(LatencyMetric())
        default = small_space.default_configuration()
        history.add(make_record(default, 0, 300.0))
        history.add(make_record(default.with_values({"vm.swappiness": 1}), 1, 280.0))
        assert history.best_record().index == 1

    def test_series_shapes(self, small_space):
        history = ExplorationHistory(ThroughputMetric())
        default = small_space.default_configuration()
        for index in range(6):
            crashed = index % 3 == 2
            history.add(make_record(
                default.with_values({"vm.swappiness": index}), index,
                objective=100.0 + index, crashed=crashed, started=index * 150.0))
        assert len(history.objective_series()) == 6
        assert len(history.crash_rate_series(window=3)) == 6
        best_series = history.best_so_far_series()
        assert best_series[-1][1] >= best_series[0][1]

    def test_crash_rate_series_matches_quadratic_reference(self, small_space):
        """The rolling-sum series is pinned float-for-float to the original
        ``flags[-window:]`` re-slicing implementation it replaced."""
        import random

        def reference_series(history, window):
            series, flags = [], []
            for record in history:
                flags.append(record.crashed)
                recent = flags[-window:]
                series.append((record.finished_at_s,
                               sum(recent) / float(len(recent))))
            return series

        rng = random.Random(17)
        history = ExplorationHistory(ThroughputMetric())
        default = small_space.default_configuration()
        for index in range(120):
            history.add(make_record(
                default.with_values({"vm.swappiness": index % 60}), index,
                objective=float(index), crashed=rng.random() < 0.3,
                started=index * 150.0))
        for window in (1, 3, 25, 119, 120, 500):
            assert history.crash_rate_series(window=window) \
                == reference_series(history, window)

    def test_training_arrays(self, small_space):
        from repro.config.encoding import ConfigEncoder
        history = ExplorationHistory(ThroughputMetric())
        default = small_space.default_configuration()
        history.add(make_record(default, 0, 100.0))
        history.add(make_record(default.with_values({"vm.swappiness": 5}), 1, crashed=True))
        encoder = ConfigEncoder(small_space)
        X, y, crashed = history.training_arrays(encoder)
        assert X.shape == (2, encoder.width)
        assert y[0] == 100.0
        assert crashed.tolist() == [False, True]
        # the returned views are read-only (zero-copy contract)
        with pytest.raises(ValueError):
            y[0] = -1.0
        with pytest.raises(ValueError):
            crashed[0] = True

    def test_summary_and_contains(self, small_space):
        history = ExplorationHistory(ThroughputMetric())
        default = small_space.default_configuration()
        history.add(make_record(default, 0, 10.0))
        assert history.contains_configuration(default)
        summary = history.summary()
        assert summary["trials"] == 1
        assert summary["best_objective"] == 10.0

    def test_empty_history(self):
        history = ExplorationHistory(ThroughputMetric())
        assert history.best_record() is None
        assert history.crash_rate() == 0.0
        assert history.total_elapsed_s() == 0.0


class TestBenchmarkingPipeline:
    def test_evaluate_advances_clock(self, small_linux_model):
        pipeline = make_pipeline(small_linux_model, "nginx")
        record = pipeline.evaluate(small_linux_model.space.default_configuration())
        assert not record.crashed
        assert pipeline.clock.now_s == pytest.approx(record.duration_s)
        assert record.started_at_s == 0.0

    def test_constraint_violation_rejected_quickly(self, small_linux_model):
        pipeline = make_pipeline(small_linux_model, "nginx")
        invalid = small_linux_model.space.default_configuration().with_values(
            {"CONFIG_NET": False, "CONFIG_INET": True})
        record = pipeline.evaluate(invalid)
        assert record.crashed
        assert record.failure_stage is FailureStage.BUILD
        assert record.duration_s == pipeline.CONSTRAINT_REJECT_S

    def test_skip_build_when_only_runtime_changes(self, small_linux_model):
        pipeline = make_pipeline(small_linux_model, "nginx")
        default = small_linux_model.space.default_configuration()
        first = pipeline.evaluate(default)
        second = pipeline.evaluate(default.with_values({"net.core.somaxconn": 4096}))
        third = pipeline.evaluate(default.with_values({"CONFIG_FTRACE": False}))
        assert not first.build_skipped
        assert second.build_skipped
        assert second.duration_s < first.duration_s / 2
        assert not third.build_skipped
        assert pipeline.builds_skipped == 1

    def test_skip_build_can_be_disabled(self, small_linux_model):
        from repro.platform.metrics import metric_for_application
        simulator = make_simulator(small_linux_model, "nginx")
        pipeline = BenchmarkingPipeline(simulator, metric_for_application("nginx"),
                                        enable_skip_build=False)
        default = small_linux_model.space.default_configuration()
        pipeline.evaluate(default)
        second = pipeline.evaluate(default.with_values({"net.core.somaxconn": 4096}))
        assert not second.build_skipped


class TestSearchSession:
    def test_iteration_budget(self, small_linux_model):
        pipeline = make_pipeline(small_linux_model, "nginx")
        algorithm = RandomSearch(small_linux_model.space, seed=4,
                                 favored_kinds=[ParameterKind.RUNTIME])
        session = SearchSession(pipeline, algorithm)
        result = session.run(iterations=12)
        assert result.iterations == 12
        assert result.best_objective is not None
        assert result.algorithm_name == "random"

    def test_time_budget(self, small_linux_model):
        pipeline = make_pipeline(small_linux_model, "nginx")
        algorithm = RandomSearch(small_linux_model.space, seed=4,
                                 favored_kinds=[ParameterKind.RUNTIME])
        session = SearchSession(pipeline, algorithm)
        result = session.run(time_budget_s=2000.0)
        assert result.history.total_elapsed_s() >= 2000.0
        assert result.iterations >= 2

    def test_requires_some_budget(self, small_linux_model):
        pipeline = make_pipeline(small_linux_model, "nginx")
        algorithm = RandomSearch(small_linux_model.space, seed=4)
        session = SearchSession(pipeline, algorithm)
        with pytest.raises(ValueError):
            session.run()


class TestBackendStateRoundTrip:
    """WorkerPoolBackend export/import round-trips, including in-flight and
    degenerate states (zero trials, skip-build image on a subset of workers)."""

    def _pool(self, os_model, workers=2, seed=7, enable_skip_build=True):
        from repro.platform.executor import WorkerPoolBackend

        simulator = make_simulator(os_model, "nginx", seed=seed)
        metric = metric_for_application("nginx")
        return WorkerPoolBackend(simulator, metric, workers=workers,
                                 enable_skip_build=enable_skip_build)

    def _variants(self, space, n):
        default = space.default_configuration()
        return [default.with_values({"net.core.somaxconn": 128 + index})
                for index in range(n)]

    def test_zero_trial_round_trip(self, small_linux_model):
        backend = self._pool(small_linux_model)
        state = backend.export_state()
        assert state["in_flight"] == []
        assert state["busy_s"] == [0.0, 0.0]
        restored = self._pool(small_linux_model)
        restored.import_state(state)
        assert restored.export_state() == state
        assert restored.trials_run == 0
        assert restored.worker_utilization == [1.0, 1.0]

    def test_in_flight_trials_round_trip(self, small_linux_model):
        backend = self._pool(small_linux_model)
        for configuration in self._variants(small_linux_model.space, 2):
            backend.submit(configuration)
        assert backend.in_flight == 2
        state = backend.export_state()
        assert len(state["in_flight"]) == 2

        restored = self._pool(small_linux_model)
        restored.import_state(state)
        assert restored.export_state() == state
        assert restored.pending_configurations() == backend.pending_configurations()
        # popping completions from both yields identical records, and the
        # freed workers continue from identical clocks
        while backend.in_flight:
            ours = backend.next_completion()
            theirs = restored.next_completion()
            assert (ours.configuration, ours.objective, ours.crashed,
                    ours.duration_s, ours.started_at_s, ours.worker) == (
                        theirs.configuration, theirs.objective, theirs.crashed,
                        theirs.duration_s, theirs.started_at_s, theirs.worker)
        assert restored.worker_clocks_s == backend.worker_clocks_s

    def test_skip_build_image_on_subset_of_workers(self, small_linux_model):
        backend = self._pool(small_linux_model)
        # one completed trial: only worker 0 has booted (and can reuse) an image
        records = backend.run_batch(self._variants(small_linux_model.space, 1))
        state = backend.export_state()
        images = [entry["last_running_configuration"]
                  for entry in state["pipelines"]]
        assert images[1] is None  # worker 1 never evaluated anything
        if not records[0].crashed:
            assert images[0] is not None

        restored = self._pool(small_linux_model)
        restored.import_state(state)
        assert restored.export_state() == state
        assert restored.builds_skipped == backend.builds_skipped
        assert restored.worker_busy_s == backend.worker_busy_s

    def test_import_rejects_mismatched_shape(self, small_linux_model):
        backend = self._pool(small_linux_model, workers=2)
        state = backend.export_state()
        three = self._pool(small_linux_model, workers=3)
        with pytest.raises(ValueError):
            three.import_state(state)
        from repro.platform.executor import SerialBackend

        serial = SerialBackend(make_pipeline(small_linux_model, "nginx"))
        with pytest.raises(ValueError):
            serial.import_state(state)

    def test_legacy_state_without_event_fields(self, small_linux_model):
        """Pre-async checkpoints (no busy/in-flight/horizon keys) still load."""
        backend = self._pool(small_linux_model)
        backend.run_batch(self._variants(small_linux_model.space, 2))
        state = backend.export_state()
        for key in ("busy_s", "horizon_s", "in_flight"):
            state.pop(key)
        restored = self._pool(small_linux_model)
        restored.import_state(state)
        assert restored.in_flight == 0
        assert restored.worker_clocks_s == backend.worker_clocks_s
        # the horizon defaults to the restored session clock
        assert restored.export_state()["horizon_s"] == backend.now_s
