"""Unit tests for the DeepTune model, scoring function, transfer and importance."""

import numpy as np
import pytest

from repro.config.encoding import ConfigEncoder
from repro.config.parameter import ParameterKind
from repro.deeptune.algorithm import DeepTuneSearch
from repro.deeptune.importance import (
    importance_vector,
    model_permutation_importance,
    parameter_importance,
    top_parameters,
    variance_reduction_importance,
)
from repro.deeptune.model import DeepTuneModel
from repro.deeptune.scoring import dissimilarity, exploration_score, score_candidates
from repro.deeptune.transfer import load_model_state, save_model_state, transfer_model



def make_synthetic_dataset(n=120, d=12, seed=0):
    """A learnable synthetic problem: performance driven by 2 features, crashes by 1."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    performance = 100.0 + 50.0 * X[:, 0] - 30.0 * X[:, 1] + rng.normal(0, 1.0, n)
    crashed = X[:, 2] > 0.8
    performance = np.where(crashed, np.nan, performance)
    return X, performance, crashed


class TestDeepTuneModel:
    def test_prediction_shapes(self):
        model = DeepTuneModel(input_dim=12, seed=1)
        X, y, crashed = make_synthetic_dataset()
        for row, target, crash in zip(X, y, crashed):
            model.add_observation(row, None if np.isnan(target) else target, bool(crash))
        model.fit_incremental(steps=20)
        prediction = model.predict(X[:5])
        assert len(prediction) == 5
        assert prediction.crash_probability.shape == (5,)
        assert np.all((prediction.crash_probability >= 0) & (prediction.crash_probability <= 1))
        assert np.all((prediction.uncertainty >= 0) & (prediction.uncertainty <= 1))

    def test_learns_crash_boundary(self):
        model = DeepTuneModel(input_dim=12, seed=1, learning_rate=5e-3)
        X, y, crashed = make_synthetic_dataset(n=200)
        for row, target, crash in zip(X, y, crashed):
            model.add_observation(row, None if np.isnan(target) else target, bool(crash))
        for _ in range(10):
            model.fit_incremental(steps=40)
        prediction = model.predict(X)
        predicted_crash = prediction.crash_probability > 0.5
        accuracy = float(np.mean(predicted_crash == crashed))
        assert accuracy > 0.75

    def test_learns_performance_ordering(self):
        model = DeepTuneModel(input_dim=12, seed=1, learning_rate=5e-3)
        X, y, crashed = make_synthetic_dataset(n=200)
        for row, target, crash in zip(X, y, crashed):
            model.add_observation(row, None if np.isnan(target) else target, bool(crash))
        for _ in range(10):
            model.fit_incremental(steps=40)
        ok = ~crashed
        predicted = model.predict(X[ok]).performance
        actual = y[ok]
        correlation = np.corrcoef(predicted, actual)[0, 1]
        assert correlation > 0.5

    def test_uncertainty_higher_for_outliers(self):
        model = DeepTuneModel(input_dim=8, seed=2)
        rng = np.random.default_rng(3)
        X = rng.random((80, 8)) * 0.2  # training data in a small corner
        for row in X:
            model.add_observation(row, 10.0, False)
        for _ in range(5):
            model.fit_incremental(steps=30)
        familiar = model.predict(X[:10]).uncertainty.mean()
        outliers = model.predict(np.full((10, 8), 5.0)).uncertainty.mean()
        assert outliers > familiar

    def test_incremental_cost_constant(self):
        model = DeepTuneModel(input_dim=10, seed=1)
        rng = np.random.default_rng(0)
        import time
        timings = []
        for round_index in range(3):
            for _ in range(30):
                model.add_observation(rng.random(10), float(rng.random()), False)
            started = time.perf_counter()
            model.fit_incremental(steps=10, batch_size=16)
            timings.append(time.perf_counter() - started)
        # The third round has 3x the data of the first but per-call cost stays
        # bounded (constant number of minibatch steps).
        assert timings[-1] < timings[0] * 5 + 0.05

    def test_invalid_feature_width_rejected(self):
        model = DeepTuneModel(input_dim=4)
        with pytest.raises(ValueError):
            model.add_observation(np.ones(5), 1.0, False)

    def test_state_dict_roundtrip(self):
        model = DeepTuneModel(input_dim=6, seed=4)
        X, y, crashed = make_synthetic_dataset(n=40, d=6)
        for row, target, crash in zip(X, y, crashed):
            model.add_observation(row, None if np.isnan(target) else target, bool(crash))
        model.fit_incremental(steps=10)
        clone = model.clone_architecture()
        clone.load_state_dict(model.state_dict())
        original = model.predict(X[:5])
        restored = clone.predict(X[:5])
        assert np.allclose(original.performance, restored.performance)
        assert np.allclose(original.crash_probability, restored.crash_probability)


class TestScoring:
    def test_dissimilarity_bounds(self):
        known = np.random.default_rng(0).random((10, 5))
        candidates = np.random.default_rng(1).random((4, 5))
        values = dissimilarity(candidates, known)
        assert values.shape == (4,)
        assert np.all((values >= 0) & (values <= 1))
        assert np.all(dissimilarity(known[:2], known) < 1e-9)

    def test_dissimilarity_empty_history(self):
        assert np.all(dissimilarity(np.ones((3, 4)), np.empty((0, 4))) == 1.0)

    def test_exploration_score_alpha_validation(self):
        with pytest.raises(ValueError):
            exploration_score(np.ones((2, 3)), np.ones((2, 3)), np.ones(2), alpha=1.5)

    def test_score_prefers_predicted_good_and_unexplored(self):
        candidates = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5]])
        known = np.array([[0.0, 0.0]])
        scores = score_candidates(
            candidates=candidates,
            known=known,
            predicted_performance=np.array([10.0, 10.0, 10.0]),
            predicted_uncertainty=np.array([0.1, 0.9, 0.5]),
            predicted_crash_probability=np.zeros(3),
            maximize=True,
        )
        assert scores[1] > scores[0]

    def test_score_penalizes_predicted_crashes(self):
        candidates = np.random.default_rng(0).random((3, 4))
        scores = score_candidates(
            candidates=candidates,
            known=np.empty((0, 4)),
            predicted_performance=np.array([5.0, 5.0, 5.0]),
            predicted_uncertainty=np.full(3, 0.5),
            predicted_crash_probability=np.array([0.05, 0.95, 0.05]),
            maximize=True,
        )
        assert scores[1] < scores[0]
        assert scores[1] < scores[2]

    def test_score_respects_direction(self):
        candidates = np.random.default_rng(0).random((2, 4))
        common = dict(candidates=candidates, known=np.empty((0, 4)),
                      predicted_uncertainty=np.zeros(2),
                      predicted_crash_probability=np.zeros(2))
        maximize = score_candidates(predicted_performance=np.array([1.0, 2.0]),
                                    maximize=True, **common)
        minimize = score_candidates(predicted_performance=np.array([1.0, 2.0]),
                                    maximize=False, **common)
        assert maximize[1] > maximize[0]
        assert minimize[0] > minimize[1]


class TestDeepTuneSearch:
    def run_session(self, small_linux_model, iterations=25, model=None):
        from tests.conftest import make_pipeline
        from repro.platform.runner import SearchSession

        pipeline = make_pipeline(small_linux_model, "nginx", seed=8)
        search = DeepTuneSearch(
            small_linux_model.space, seed=8, favored_kinds=[ParameterKind.RUNTIME],
            warmup_iterations=6, candidate_pool_size=48,
            training_steps_per_iteration=10, model=model)
        session = SearchSession(pipeline, search)
        return search, session.run(iterations=iterations)

    def test_search_improves_over_default(self, small_linux_model):
        from repro.apps.nginx import NginxApplication

        search, result = self.run_session(small_linux_model, iterations=40)
        default_perf = NginxApplication().performance(
            small_linux_model.space.default_configuration())
        assert result.best_objective > default_perf
        assert search.model.observation_count == 40
        assert len(search.update_times_s) == 40
        assert search.mean_update_time_s() > 0

    def test_rejects_mismatched_pretrained_model(self, small_linux_model):
        wrong = DeepTuneModel(input_dim=3)
        with pytest.raises(ValueError):
            DeepTuneSearch(small_linux_model.space, model=wrong)

    def test_transfer_flag(self, small_linux_model):
        encoder = ConfigEncoder(small_linux_model.space)
        pretrained = DeepTuneModel(input_dim=encoder.width, seed=1)
        fresh = DeepTuneSearch(small_linux_model.space, model=pretrained)
        assert not fresh.transferred  # no observations yet
        pretrained.add_observation(np.zeros(encoder.width), 1.0, False)
        warmed = DeepTuneSearch(small_linux_model.space, model=pretrained)
        assert warmed.transferred

    def test_predicted_crash_probability_callable(self, small_linux_model):
        search, _ = self.run_session(small_linux_model, iterations=15)
        probability = search.predicted_crash_probability(
            small_linux_model.space.default_configuration())
        assert 0.0 <= probability <= 1.0

    def test_single_batched_predict_per_proposal(self, small_linux_model):
        """The scoring-tier audit: each model-guided proposal makes exactly
        one batched ``DeepTuneModel.predict`` call over the candidate pool —
        never per-candidate calls."""
        from repro.platform.history import ExplorationHistory
        from repro.platform.metrics import ThroughputMetric

        search = DeepTuneSearch(
            small_linux_model.space, seed=8,
            favored_kinds=[ParameterKind.RUNTIME], warmup_iterations=1,
            candidate_pool_size=32, training_steps_per_iteration=2)
        history = ExplorationHistory(ThroughputMetric())
        rng = __import__("random").Random(4)
        for index in range(4):
            configuration = small_linux_model.space.sample_configuration(rng)
            from tests.test_platform import make_record

            record = make_record(configuration, index,
                                 objective=100.0 + index,
                                 crashed=index == 2, started=index * 150.0)
            history.add(record)
            search.observe(record)

        calls = []
        original_predict = search.model.predict

        def counting_predict(matrix):
            calls.append(np.asarray(matrix).shape[0])
            return original_predict(matrix)

        search.model.predict = counting_predict
        search.propose(history)
        assert len(calls) == 1
        assert calls[0] >= 32  # the whole pool in one batch
        calls.clear()
        search.propose_batch(history, 4)
        assert len(calls) == 1


class TestTransfer:
    def test_transfer_copies_weights_not_buffer(self):
        source = DeepTuneModel(input_dim=6, seed=3)
        X, y, crashed = make_synthetic_dataset(n=50, d=6)
        for row, target, crash in zip(X, y, crashed):
            source.add_observation(row, None if np.isnan(target) else target, bool(crash))
        source.fit_incremental(steps=20)
        target = transfer_model(source)
        assert target.observation_count == 0
        assert np.allclose(target.dense1.weights, source.dense1.weights)
        assert not target.target_scaler.is_fitted

    def test_save_and_load(self, tmp_path):
        model = DeepTuneModel(input_dim=5, seed=9)
        model.add_observation(np.ones(5), 2.0, False)
        model.add_observation(np.zeros(5), 1.0, False)
        model.fit_incremental(steps=5)
        path = str(tmp_path / "dtm.npz")
        save_model_state(model, path)
        restored = load_model_state(path)
        probe = np.random.default_rng(0).random((3, 5))
        assert np.allclose(restored.predict(probe).performance,
                           model.predict(probe).performance)


class TestImportance:
    def test_variance_reduction_finds_relevant_columns(self):
        rng = np.random.default_rng(0)
        X = rng.random((300, 6))
        y = 10.0 * X[:, 4] + rng.normal(0, 0.2, 300)
        importances = variance_reduction_importance(X, y)
        assert int(np.argmax(importances)) == 4
        assert importances[4] > 0.5
        assert np.all(importances[:4] < 0.3)

    def test_handles_nan_targets_and_constant_columns(self):
        X = np.ones((50, 3))
        y = np.full(50, np.nan)
        assert np.all(variance_reduction_importance(X, y) == 0.0)

    def test_parameter_importance_aggregates_one_hot(self, small_space, rng):
        encoder = ConfigEncoder(small_space)
        configs = [small_space.sample_configuration(rng) for _ in range(200)]
        X = encoder.encode_batch(configs)
        start, _ = encoder.slice_for("net.core.somaxconn")
        y = 100.0 * X[:, start]
        importances = parameter_importance(encoder, X, y)
        assert top_parameters(importances, 1) == ["net.core.somaxconn"]

    def test_importance_vector_ordering(self):
        vector = importance_vector({"a": 1.0, "b": 0.5}, ["b", "a", "c"])
        assert vector.tolist() == [0.5, 1.0, 0.0]

    def test_model_permutation_importance(self):
        model = DeepTuneModel(input_dim=6, seed=3, learning_rate=5e-3)
        rng = np.random.default_rng(1)
        X = rng.random((150, 6))
        y = 50.0 * X[:, 1]
        for row, target in zip(X, y):
            model.add_observation(row, float(target), False)
        for _ in range(8):
            model.fit_incremental(steps=30)
        importances = model_permutation_importance(model, X[:50], repeats=2)
        assert int(np.argmax(importances)) == 1
