"""Integration tests: full search sessions across modules.

These tests reproduce, at a reduced iteration count, the qualitative claims
of the paper's evaluation: DeepTune finds better-than-default configurations,
its crash rate drops below random search's, transfer learning warm-starts the
search, Cozart debloating composes with the runtime search, and the memory
metric drives footprint reductions.
"""

import pytest

from repro import Wayfinder
from repro.apps.registry import default_bench_tool_for, get_application
from repro.config.parameter import ParameterKind
from repro.cozart.debloat import CozartDebloater
from repro.deeptune.algorithm import DeepTuneSearch
from repro.deeptune.transfer import transfer_model
from repro.platform.metrics import CompositeScoreMetric
from repro.platform.pipeline import BenchmarkingPipeline, VirtualClock
from repro.platform.runner import SearchSession
from repro.vm.simulator import SystemSimulator

from tests.conftest import SMALL_SPACE_OPTIONS


def linux_wayfinder(**kwargs):
    defaults = dict(application="nginx", metric="throughput", seed=31,
                    algorithm="deeptune", favor="runtime",
                    space_options=SMALL_SPACE_OPTIONS)
    defaults.update(kwargs)
    return Wayfinder.for_linux(**defaults)


class TestPerformanceSearch:
    def test_deeptune_beats_default_for_nginx(self):
        result = linux_wayfinder().specialize(iterations=35)
        assert result.improvement_factor > 1.05

    def test_deeptune_crash_rate_drops_below_random(self):
        deeptune = linux_wayfinder(seed=32).specialize(iterations=45)
        random_result = linux_wayfinder(seed=32, algorithm="random").specialize(iterations=45)
        late_deeptune = deeptune.history.crash_rate_series(window=15)[-1][1]
        late_random = random_result.history.crash_rate_series(window=15)[-1][1]
        assert late_deeptune <= late_random

    def test_npb_improvement_is_marginal(self):
        result = linux_wayfinder(application="npb", seed=33).specialize(iterations=25)
        assert result.improvement_factor == pytest.approx(1.0, abs=0.06)

    def test_sqlite_stays_close_to_default(self):
        result = linux_wayfinder(application="sqlite", metric="auto",
                                 seed=34).specialize(iterations=25)
        # The default is already close to optimal: no large improvement exists.
        assert result.improvement_factor < 1.10


class TestTransferLearning:
    def test_redis_model_warm_starts_nginx(self):
        redis_wayfinder = linux_wayfinder(application="redis", seed=35)
        redis_wayfinder.specialize(iterations=35)
        pretrained = transfer_model(redis_wayfinder.trained_model())
        # Keep the replay buffer empty but the learned weights: the paper's
        # "TL" configuration.
        transferred = linux_wayfinder(
            seed=36, algorithm_options={"model": pretrained, "warmup_iterations": 0})
        cold = linux_wayfinder(seed=36)
        warm_result = transferred.specialize(iterations=20)
        cold_result = cold.specialize(iterations=20)
        assert warm_result.crash_rate <= cold_result.crash_rate + 0.1
        assert warm_result.best_performance is not None


class TestMemoryFootprintSearch:
    def test_memory_search_reduces_footprint(self):
        wayfinder = linux_wayfinder(metric="memory", favor="compile",
                                    architecture="riscv64", seed=37)
        result = wayfinder.specialize(iterations=40)
        assert result.best_performance < result.default_objective
        reduction = 1.0 - result.best_performance / result.default_objective
        assert reduction > 0.02


class TestCozartSynergy:
    def test_search_on_top_of_cozart_baseline(self, small_linux_model):
        debloater = CozartDebloater(small_linux_model, seed=2)
        debloated = debloater.debloat("nginx")

        application = get_application("nginx")
        bench = default_bench_tool_for("nginx")
        metric = CompositeScoreMetric()
        simulator = SystemSimulator(small_linux_model, application, bench, seed=5)

        # Score the Cozart baseline itself, then let the search improve on it.
        baseline_outcome = simulator.evaluate(debloated.baseline)
        assert not baseline_outcome.crashed
        baseline_score = metric.score(baseline_outcome.metric_value,
                                      baseline_outcome.memory_mb)

        pipeline = BenchmarkingPipeline(simulator, metric, clock=VirtualClock())
        search = DeepTuneSearch(debloated.reduced_space, seed=5,
                                favored_kinds=[ParameterKind.RUNTIME],
                                warmup_iterations=5, candidate_pool_size=48,
                                training_steps_per_iteration=10)
        session = SearchSession(pipeline, search)
        result = session.run(iterations=30)
        assert result.best_objective is not None
        assert result.best_objective >= baseline_score


class TestUnikraftSearch:
    def test_deeptune_finds_fast_unikraft_configuration(self):
        wayfinder = Wayfinder.for_unikraft(
            seed=38, algorithm="deeptune",
            algorithm_options={"warmup_iterations": 8, "candidate_pool_size": 64,
                               "training_steps_per_iteration": 10})
        result = wayfinder.specialize(iterations=45)
        assert result.best_performance > 30000

    def test_bayesian_also_improves_but_works_on_small_space(self):
        wayfinder = Wayfinder.for_unikraft(seed=39, algorithm="bayesian",
                                           algorithm_options={"candidate_pool_size": 48})
        result = wayfinder.specialize(iterations=30)
        assert result.best_performance is not None


class TestPlatformBehaviours:
    def test_runtime_favored_search_skips_most_builds(self):
        wayfinder = linux_wayfinder(seed=40, algorithm="random")
        result = wayfinder.specialize(iterations=20)
        # All proposals differ only in runtime parameters after the first
        # build, so nearly every iteration reuses the running image.
        assert result.builds_skipped >= 10

    def test_histories_are_reproducible_for_fixed_seed(self):
        first = linux_wayfinder(seed=41, algorithm="random").specialize(iterations=10)
        second = linux_wayfinder(seed=41, algorithm="random").specialize(iterations=10)
        assert [r.objective for r in first.history] == \
            [r.objective for r in second.history]
        assert [r.crashed for r in first.history] == [r.crashed for r in second.history]
