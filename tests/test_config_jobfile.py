"""Unit tests for job-file serialization and the YAML-subset parser."""

import pytest

from repro.config.jobfile import (
    JobFile,
    dump_job_file,
    dump_yaml,
    load_job_file,
    load_yaml,
    parameter_from_dict,
)


class TestYamlSubset:
    def test_roundtrip_nested_mapping(self):
        data = {
            "job": {"name": "nginx-perf", "iterations": 250, "ratio": 0.5,
                    "quiet": True, "comment": None},
            "values": [1, 2, 3],
        }
        assert load_yaml(dump_yaml(data)) == data

    def test_roundtrip_list_of_mappings(self):
        data = {"parameters": [
            {"name": "net.core.somaxconn", "type": "int", "minimum": 16},
            {"name": "CONFIG_NET", "type": "bool", "default": True},
        ]}
        assert load_yaml(dump_yaml(data)) == data

    def test_list_item_with_block_valued_first_key(self):
        # the hand-written campaign-file idiom: a list item opening with a
        # block-valued key, with sibling keys at the item's own indent
        text = """
overrides:
  - match:
      application: redis
    set:
      metric: latency
  - match:
      algorithm: grid
    set:
      iterations: 3
"""
        assert load_yaml(text) == {"overrides": [
            {"match": {"application": "redis"}, "set": {"metric": "latency"}},
            {"match": {"algorithm": "grid"}, "set": {"iterations": 3}},
        ]}

    def test_comments_and_blank_lines_ignored(self):
        text = """
# a job file
job:
  name: demo   # inline comment
  iterations: 10

  seed: 3
"""
        assert load_yaml(text) == {"job": {"name": "demo", "iterations": 10, "seed": 3}}

    def test_scalar_parsing(self):
        text = "a: true\nb: false\nc: null\nd: 0x10\ne: 2.5\nf: hello\ng: \"quoted: yes\""
        parsed = load_yaml(text)
        assert parsed == {"a": True, "b": False, "c": None, "d": 16, "e": 2.5,
                          "f": "hello", "g": "quoted: yes"}

    def test_empty_document(self):
        assert load_yaml("") == {}
        assert load_yaml("\n# only a comment\n") == {}

    def test_special_strings_are_quoted_on_dump(self):
        text = dump_yaml({"key": "value: with colon"})
        assert load_yaml(text) == {"key": "value: with colon"}

    def test_numeric_looking_strings_round_trip_as_strings(self):
        # regression: these previously dumped unquoted and parsed back as
        # ints/floats ("1.5" -> 1.5, "007" -> 7, "0x1f" -> 31, "1e3" -> 1000.0)
        data = {"a": "1.5", "b": "007", "c": "0x1f", "d": "1e3",
                "e": "nan", "f": "-inf", "g": "0b101", "h": "+3"}
        roundtripped = load_yaml(dump_yaml(data))
        assert roundtripped == data
        for value in roundtripped.values():
            assert isinstance(value, str)

    def test_numbers_still_round_trip_as_numbers(self):
        data = {"a": 1.5, "b": 7, "c": 0.0, "d": -3}
        assert load_yaml(dump_yaml(data)) == data

    def test_leading_indicator_strings_round_trip(self):
        # "-x" as a list item previously rendered as "- -x"; "?y" is a YAML
        # indicator.  Both must survive in mappings and in lists.
        data = {"values": ["-x", "- spaced", "?y", "plain"],
                "flag": "-x", "question": "?y"}
        assert load_yaml(dump_yaml(data)) == data

    def test_reserved_words_round_trip_as_strings(self):
        data = {"values": ["null", "true", "no", "~"]}
        roundtripped = load_yaml(dump_yaml(data))
        assert roundtripped == data
        assert all(isinstance(v, str) for v in roundtripped["values"])


class TestParameterFromDict:
    def test_int_roundtrip(self, small_space):
        parameter = small_space["net.core.somaxconn"]
        rebuilt = parameter_from_dict(parameter.to_dict())
        assert rebuilt == parameter

    def test_categorical_roundtrip(self, small_space):
        parameter = small_space["net.ipv4.tcp_congestion_control"]
        rebuilt = parameter_from_dict(parameter.to_dict())
        assert rebuilt.choices == parameter.choices

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            parameter_from_dict({"name": "x", "type": "mystery", "kind": "runtime",
                                 "default": 1})


class TestJobFile:
    def make_job(self, small_space):
        return JobFile(
            name="nginx-throughput",
            os_name="linux",
            application="nginx",
            bench_tool="wrk",
            metric="throughput",
            space=small_space,
            iterations=100,
            favor_kinds=["runtime"],
            frozen={"kernel.randomize_va_space": 2},
            seed=7,
            workers=4,
            batch_size=8,
        )

    @pytest.mark.parametrize("extension", ["yaml", "json"])
    def test_dump_and_load_roundtrip(self, tmp_path, small_space, extension):
        job = self.make_job(small_space)
        path = str(tmp_path / ("job." + extension))
        dump_job_file(job, path)
        loaded = load_job_file(path)
        assert loaded.name == job.name
        assert loaded.application == "nginx"
        assert loaded.metric == "throughput"
        assert loaded.iterations == 100
        assert loaded.seed == 7
        assert loaded.workers == 4
        assert loaded.batch_size == 8
        assert len(loaded.space) == len(small_space)
        assert loaded.space.frozen_parameters == {"kernel.randomize_va_space": 2}

    def test_loaded_space_parameters_match_types(self, tmp_path, small_space):
        job = self.make_job(small_space)
        path = str(tmp_path / "job.yaml")
        dump_job_file(job, path)
        loaded = load_job_file(path)
        for parameter in small_space.parameters():
            assert parameter.name in loaded.space
            assert loaded.space[parameter.name].type_name == parameter.type_name

    def test_from_dict_defaults(self):
        job = JobFile.from_dict({"job": {}, "parameters": []})
        assert job.os_name == "linux"
        assert job.iterations == 250
        assert job.workers == 1
        assert job.batch_size == 1
