"""Property-style tests for the append-only columnar trial store.

The store is the durability layer under checkpoints and saved histories, so
the bar is bit-exactness: every ``TrialRecord`` field — including NaN
objectives on crashed trials, worker attribution, timestamps, and unicode
failure reasons — must survive append → flush → reopen → mmap read
unchanged, and torn writes must recover through the results store's
``.prev``/``.corrupt`` manifest fallback with the sidecars' valid prefix.
"""

import json
import math
import os
import random

import numpy as np
import pytest

from repro.config.space import Configuration
from repro.platform import trialstore
from repro.platform.history import TrialRecord
from repro.platform.results import ResultsStore, record_to_dict
from repro.platform.trialstore import (
    HEADER_SIZE,
    TRIAL_DTYPE,
    TrialStoreWriter,
    open_columns,
    read_record_dicts,
)
from repro.vm.failures import FailureStage

from tests.conftest import SMALL_SPACE_OPTIONS


def random_record(space, rng, index):
    """A randomized record exercising every field shape the store must hold."""
    crashed = rng.random() < 0.3
    stage = rng.choice([FailureStage.BUILD, FailureStage.BOOT, FailureStage.RUN]) \
        if crashed else FailureStage.NONE
    objective = None if crashed else rng.uniform(-1e6, 1e6)
    # a genuine NaN measurement must stay distinguishable from "no value"
    if not crashed and rng.random() < 0.1:
        objective = float("nan")
    return TrialRecord(
        index=index,
        configuration=space.sample_configuration(rng),
        objective=objective,
        crashed=crashed,
        failure_stage=stage,
        failure_reason="boom ☃ {}".format(index) if crashed else "",
        metric_value=None if crashed else rng.uniform(0, 1e4),
        memory_mb=None if rng.random() < 0.2 else rng.uniform(10, 4000),
        duration_s=rng.uniform(0, 1e4),
        started_at_s=rng.uniform(0, 1e7),
        build_skipped=rng.random() < 0.5,
        worker=rng.randrange(0, 16),
    )


class TestRoundTrip:
    def test_records_survive_bit_exactly(self, tmp_path, small_space):
        rng = random.Random(7)
        records = [random_record(small_space, rng, i) for i in range(60)]
        columns_path = str(tmp_path / "t.trials.bin")
        payloads_path = str(tmp_path / "t.trials.jsonl")
        with TrialStoreWriter(columns_path, payloads_path) as writer:
            writer.extend(records)
            assert writer.flush() == 60
        loaded = read_record_dicts(columns_path, payloads_path, 60)
        # canonical JSON comparison: NaN objectives are equal as serialized
        # bytes where float equality would reject NaN == NaN
        assert json.dumps(loaded, sort_keys=True) \
            == json.dumps([record_to_dict(r) for r in records], sort_keys=True)
        # the dict shapes rebuild into records with identical field values
        rebuilt = trialstore.record_dicts_to_records(loaded, small_space)
        for original, copy in zip(records, rebuilt):
            assert copy.configuration == original.configuration
            assert copy.crashed == original.crashed
            assert copy.worker == original.worker
            assert copy.failure_stage is original.failure_stage
            assert copy.started_at_s == original.started_at_s
            if original.objective is None:
                assert copy.objective is None
            elif math.isnan(original.objective):
                assert math.isnan(copy.objective)
            else:
                assert copy.objective == original.objective

    def test_mmap_read_is_zero_copy(self, tmp_path, small_space):
        rng = random.Random(3)
        records = [random_record(small_space, rng, i) for i in range(20)]
        columns_path = str(tmp_path / "z.trials.bin")
        with TrialStoreWriter(columns_path, str(tmp_path / "z.trials.jsonl")) as w:
            w.extend(records)
            w.flush()
        columns = open_columns(columns_path, 20)
        assert isinstance(columns, np.memmap)
        assert not columns.flags.writeable
        objective, crashed = trialstore.training_views(columns)
        assert objective.base is not None  # a view, not a copy
        for i, record in enumerate(records):
            if record.objective is not None and not math.isnan(record.objective):
                assert objective[i] == record.objective
            assert bool(crashed[i]) == record.crashed

    def test_reopen_continues_appending(self, tmp_path, small_space):
        rng = random.Random(11)
        records = [random_record(small_space, rng, i) for i in range(30)]
        columns_path = str(tmp_path / "c.trials.bin")
        payloads_path = str(tmp_path / "c.trials.jsonl")
        with TrialStoreWriter(columns_path, payloads_path) as writer:
            writer.extend(records[:12])
            writer.flush()
        with TrialStoreWriter(columns_path, payloads_path) as writer:
            assert writer.count == 12  # picked up from the files themselves
            writer.extend(records[12:])
            assert writer.flush() == 30
        assert read_record_dicts(columns_path, payloads_path, 30) \
            == [record_to_dict(r) for r in records]

    def test_rewind_truncates_a_divergent_tail(self, tmp_path, small_space):
        rng = random.Random(5)
        records = [random_record(small_space, rng, i) for i in range(10)]
        columns_path = str(tmp_path / "r.trials.bin")
        payloads_path = str(tmp_path / "r.trials.jsonl")
        with TrialStoreWriter(columns_path, payloads_path) as writer:
            writer.extend(records)
            writer.flush()
            writer.rewind(4)
            assert writer.count == 4
            replacement = [random_record(small_space, rng, i) for i in range(4, 8)]
            writer.extend(replacement)
            assert writer.flush() == 8
        loaded = read_record_dicts(columns_path, payloads_path, 8)
        assert loaded == [record_to_dict(r) for r in records[:4] + replacement]
        with pytest.raises(ValueError):
            read_record_dicts(columns_path, payloads_path, 9)

    def test_rewind_refuses_unflushed_and_overlong(self, tmp_path, small_space):
        writer = TrialStoreWriter(str(tmp_path / "x.trials.bin"),
                                  str(tmp_path / "x.trials.jsonl"))
        with pytest.raises(ValueError):
            writer.rewind(3)  # nothing durable yet
        writer.append(random_record(small_space, random.Random(0), 0))
        with pytest.raises(RuntimeError):
            writer.rewind(0)  # pending rows must be flushed or dropped first
        writer.close()


class TestCorruptionDetection:
    def _write(self, tmp_path, small_space, n=8):
        rng = random.Random(2)
        records = [random_record(small_space, rng, i) for i in range(n)]
        columns_path = str(tmp_path / "d.trials.bin")
        payloads_path = str(tmp_path / "d.trials.jsonl")
        with TrialStoreWriter(columns_path, payloads_path) as writer:
            writer.extend(records)
            writer.flush()
        return columns_path, payloads_path, records

    def test_bad_magic_rejected(self, tmp_path, small_space):
        columns_path, payloads_path, _ = self._write(tmp_path, small_space)
        with open(columns_path, "r+b") as handle:
            handle.write(b"GARBAGE!")
        with pytest.raises(ValueError):
            read_record_dicts(columns_path, payloads_path, 8)

    def test_short_columns_rejected(self, tmp_path, small_space):
        columns_path, payloads_path, _ = self._write(tmp_path, small_space)
        size = os.path.getsize(columns_path)
        with open(columns_path, "r+b") as handle:
            handle.truncate(size - TRIAL_DTYPE.itemsize // 2)
        with pytest.raises(ValueError):
            read_record_dicts(columns_path, payloads_path, 8)
        # ... but the surviving 7-row prefix stays readable
        assert len(read_record_dicts(columns_path, payloads_path, 7)) == 7

    def test_short_payloads_rejected(self, tmp_path, small_space):
        columns_path, payloads_path, _ = self._write(tmp_path, small_space)
        with open(payloads_path, "r+b") as handle:
            handle.truncate(os.path.getsize(payloads_path) - 3)
        with pytest.raises(ValueError):
            read_record_dicts(columns_path, payloads_path, 8)

    def test_torn_column_tail_dropped_on_reopen(self, tmp_path, small_space):
        columns_path, payloads_path, records = self._write(tmp_path, small_space)
        with open(columns_path, "ab") as handle:
            handle.write(b"\x01" * (TRIAL_DTYPE.itemsize - 5))  # partial row
        with TrialStoreWriter(columns_path, payloads_path) as writer:
            assert writer.count == 8
        assert os.path.getsize(columns_path) \
            == HEADER_SIZE + 8 * TRIAL_DTYPE.itemsize


class TestManifestFallback:
    """Torn manifest writes recover through ``.prev`` with the sidecar prefix."""

    def _checkpointed_store(self, tmp_path, iterations=6):
        from repro.core.spec import ExperimentSpec
        from repro.core.wayfinder import Wayfinder

        spec = ExperimentSpec(
            application="nginx", metric="throughput", algorithm="random",
            seed=3, iterations=iterations, space_options=SMALL_SPACE_OPTIONS,
            name="torn")
        store = ResultsStore(str(tmp_path))
        wayfinder = Wayfinder.from_spec(spec)
        wayfinder.enable_checkpointing(store, name="torn", every=1)
        result = wayfinder.specialize()
        return store, result

    def test_torn_manifest_resumes_older_sidecar_prefix(self, tmp_path):
        store, result = self._checkpointed_store(tmp_path)
        path = store.checkpoint_path("torn")
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text[:len(text) // 3])  # torn write
        recovered = store.latest_valid_checkpoint("torn")
        assert recovered == path
        from repro.platform.results import load_checkpoint_file

        document = load_checkpoint_file(recovered)
        # the promoted .prev manifest references one checkpoint earlier, a
        # strict prefix of the (longer) sidecars
        assert document["trials"] == len(result.history) - 1
        assert len(document["records"]) == document["trials"]
        expected = [record_to_dict(r)
                    for r in list(result.history)[:document["trials"]]]
        assert document["records"] == expected

    def test_corrupt_sidecar_fails_over_like_a_corrupt_manifest(self, tmp_path):
        store, _ = self._checkpointed_store(tmp_path)
        columns_path, _ = store.checkpoint_trial_paths("torn")
        with open(columns_path, "r+b") as handle:
            handle.write(b"NOTMAGIC")
        # both manifests now reference unreadable sidecars → fresh start
        assert store.latest_valid_checkpoint("torn") is None

    def test_resume_after_torn_manifest_truncates_and_rewrites(self, tmp_path):
        from repro.core.wayfinder import Wayfinder

        store, result = self._checkpointed_store(tmp_path)
        reference = [(r.index, r.configuration, r.objective)
                     for r in result.history]
        path = store.checkpoint_path("torn")
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text[: len(text) // 3])
        recovered = store.latest_valid_checkpoint("torn")
        resumed = Wayfinder.resume(recovered)
        resumed.enable_checkpointing(store, name="torn", every=1)
        rerun = resumed.specialize()
        # the re-run continues from the surviving prefix and lands on the
        # exact same trajectory (deterministic-bytes invariant)
        assert [(r.index, r.configuration, r.objective)
                for r in rerun.history] == reference
        document = store.load_checkpoint("torn")
        assert document["trials"] == len(reference)


class TestCompressedSidecar:
    """Format-v3 specifics: block frames, sticky formats, torn-tail recovery."""

    def _records(self, small_space, n, seed=13):
        rng = random.Random(seed)
        return [random_record(small_space, rng, i) for i in range(n)]

    def _paths(self, tmp_path, stem="b"):
        return (str(tmp_path / (stem + ".trials.bin")),
                str(tmp_path / (stem + ".trials.jsonl")))

    def test_fresh_writer_creates_a_blocked_sidecar(self, tmp_path, small_space):
        columns_path, payloads_path = self._paths(tmp_path)
        with TrialStoreWriter(columns_path, payloads_path) as writer:
            assert writer.compressed
            writer.extend(self._records(small_space, 6))
            writer.flush()
            blocks = writer.blocks
        assert trialstore.payload_is_blocked(payloads_path)
        with open(payloads_path, "rb") as handle:
            assert handle.read(8) == trialstore.PAYLOAD_MAGIC
        assert blocks == trialstore.scan_payload_blocks(payloads_path)
        # logical offsets and sizes tile the uncompressed stream exactly
        assert blocks[0]["raw_offset"] == 0
        for before, after in zip(blocks, blocks[1:]):
            assert after["raw_offset"] == \
                before["raw_offset"] + before["raw_size"]

    def test_legacy_raw_sidecar_stays_raw_on_append(self, tmp_path,
                                                    small_space):
        records = self._records(small_space, 10)
        columns_path, payloads_path = self._paths(tmp_path, "raw")
        # lay down the pre-v3 format by hand: headerless JSONL payloads
        columns, payloads = trialstore.serialize_records(records[:6])
        with open(columns_path, "wb") as handle:
            handle.write(trialstore.make_header() + columns)
        with open(payloads_path, "wb") as handle:
            handle.write(payloads)
        with TrialStoreWriter(columns_path, payloads_path) as writer:
            assert writer.count == 6
            assert not writer.compressed  # sticky: never upgraded in place
            assert writer.blocks is None
            writer.extend(records[6:])
            writer.flush()
        assert not trialstore.payload_is_blocked(payloads_path)
        # JSON-bytes comparison: NaN objectives defeat float equality
        assert json.dumps(read_record_dicts(columns_path, payloads_path, 10),
                          sort_keys=True) \
            == json.dumps([record_to_dict(r) for r in records],
                          sort_keys=True)

    def test_multi_block_flush_reads_back(self, tmp_path, small_space):
        records = self._records(small_space, 40)
        columns_path, payloads_path = self._paths(tmp_path, "m")
        with TrialStoreWriter(columns_path, payloads_path,
                              block_raw_bytes=256) as writer:
            writer.extend(records)
            writer.flush()
            blocks = writer.blocks
        assert len(blocks) > 3  # the tiny budget forced many frames
        # every block boundary falls on a JSONL line boundary
        reader = trialstore.open_payload_reader(payloads_path, blocks)
        for entry in blocks:
            raw = reader.read(entry["raw_offset"], entry["raw_size"])
            assert raw.endswith(b"\n")
        assert json.dumps(
            read_record_dicts(columns_path, payloads_path, 40, blocks),
            sort_keys=True) \
            == json.dumps([record_to_dict(r) for r in records],
                          sort_keys=True)

    def test_reopen_scans_frames_without_a_manifest(self, tmp_path,
                                                    small_space):
        records = self._records(small_space, 12)
        columns_path, payloads_path = self._paths(tmp_path, "s")
        with TrialStoreWriter(columns_path, payloads_path,
                              block_raw_bytes=512) as writer:
            writer.extend(records[:7])
            writer.flush()
        with TrialStoreWriter(columns_path, payloads_path,
                              block_raw_bytes=512) as writer:
            assert writer.count == 7  # recovered from the frames alone
            writer.extend(records[7:])
            writer.flush()
        assert json.dumps(
            read_record_dicts(columns_path, payloads_path, 12,
                              trialstore.scan_payload_blocks(payloads_path)),
            sort_keys=True) \
            == json.dumps([record_to_dict(r) for r in records],
                          sort_keys=True)

    def test_torn_block_tail_drops_uncovered_rows(self, tmp_path, small_space):
        records = self._records(small_space, 20)
        columns_path, payloads_path = self._paths(tmp_path, "t")
        with TrialStoreWriter(columns_path, payloads_path,
                              block_raw_bytes=512) as writer:
            writer.extend(records)
            writer.flush()
            blocks = writer.blocks
        assert len(blocks) >= 2
        # crash mid-frame: the last block's frame loses its final bytes
        with open(payloads_path, "r+b") as handle:
            handle.truncate(os.path.getsize(payloads_path) - 4)
        survivors = trialstore.scan_payload_blocks(payloads_path)
        assert survivors == blocks[:-1]  # whole-block prefix validity
        with TrialStoreWriter(columns_path, payloads_path,
                              block_raw_bytes=512) as writer:
            # rows whose payload lived in the torn frame are dropped; the
            # remainder reads back bit-exactly
            count = writer.count
            coverage = survivors[-1]["raw_offset"] + survivors[-1]["raw_size"]
            assert 0 < count < 20
            assert json.dumps(
                read_record_dicts(columns_path, payloads_path, count,
                                  writer.blocks), sort_keys=True) \
                == json.dumps([record_to_dict(r) for r in records[:count]],
                              sort_keys=True)
            assert writer.blocks == survivors
            assert coverage >= sum(
                len(trialstore.encode_payload(r)) for r in records[:count])

    def test_mid_block_rewind_splits_the_straddling_frame(self, tmp_path,
                                                          small_space):
        records = self._records(small_space, 16)
        columns_path, payloads_path = self._paths(tmp_path, "w")
        with TrialStoreWriter(columns_path, payloads_path) as writer:
            writer.extend(records)
            writer.flush()  # one flush → one big block; rewind lands inside it
            writer.rewind(5)
            assert writer.count == 5
            replacement = self._records(small_space, 5, seed=99)[:5]
            for index, record in enumerate(replacement):
                record.index = 5 + index
            writer.extend(replacement)
            writer.flush()
        assert json.dumps(
            read_record_dicts(columns_path, payloads_path, 10,
                              trialstore.scan_payload_blocks(payloads_path)),
            sort_keys=True) \
            == json.dumps(
                [record_to_dict(r) for r in records[:5] + replacement],
                sort_keys=True)

    def test_corrupt_frame_raises_value_error(self, tmp_path, small_space):
        columns_path, payloads_path = self._paths(tmp_path, "c")
        with TrialStoreWriter(columns_path, payloads_path) as writer:
            writer.extend(self._records(small_space, 4))
            writer.flush()
            blocks = writer.blocks
        # flip bytes inside the zlib stream, keeping the frame header intact
        with open(payloads_path, "r+b") as handle:
            handle.seek(trialstore.PAYLOAD_HEADER_SIZE
                        + trialstore.BLOCK_HEADER_SIZE + 2)
            handle.write(b"\xff\xff\xff\xff")
        with pytest.raises(ValueError):
            read_record_dicts(columns_path, payloads_path, 4, blocks)

    def test_blocked_manifest_over_raw_sidecar_rejected(self, tmp_path,
                                                        small_space):
        records = self._records(small_space, 3)
        columns_path, payloads_path = self._paths(tmp_path, "x")
        columns, payloads = trialstore.serialize_records(records)
        with open(columns_path, "wb") as handle:
            handle.write(trialstore.make_header() + columns)
        with open(payloads_path, "wb") as handle:
            handle.write(payloads)
        bogus = [{"offset": trialstore.PAYLOAD_HEADER_SIZE, "size": 10,
                  "raw_offset": 0, "raw_size": len(payloads)}]
        with pytest.raises(ValueError):
            trialstore.open_payload_reader(payloads_path, bogus)


def test_configuration_payloads_roundtrip_unicode(tmp_path, small_space):
    record = random_record(small_space, random.Random(1), 0)
    record.failure_reason = "φάσμα — 🙂 \"quoted\"\nline"
    record.crashed = True
    record.objective = None
    record.failure_stage = FailureStage.RUN
    columns_path = str(tmp_path / "u.trials.bin")
    payloads_path = str(tmp_path / "u.trials.jsonl")
    with TrialStoreWriter(columns_path, payloads_path) as writer:
        writer.append(record)
        writer.flush()
    (loaded,) = read_record_dicts(columns_path, payloads_path, 1)
    assert loaded == record_to_dict(record)
    assert isinstance(loaded["configuration"], dict)
    assert Configuration(small_space, loaded["configuration"]) == record.configuration
