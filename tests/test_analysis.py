"""Unit tests for the analysis helpers (similarity, smoothing, stats, reporting)."""

import numpy as np
import pytest

from repro.analysis.reporting import format_series, format_table
from repro.analysis.similarity import (
    cosine_similarity,
    cross_similarity_matrix,
    similarity_report,
)
from repro.analysis.smoothing import downsample, moving_average, smooth_series
from repro.analysis.stats import (
    classification_accuracy,
    failure_and_run_accuracy,
    normalized_mae,
    prediction_quality_summary,
)


class TestSimilarity:
    def test_cosine_similarity_bounds(self):
        assert cosine_similarity([1, 0], [1, 0]) == pytest.approx(1.0)
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)
        assert cosine_similarity([0, 0], [1, 1]) == 0.0

    def test_cross_similarity_matrix_structure(self):
        importances = {
            "nginx": {"somaxconn": 1.0, "rmem": 0.8, "thp": 0.1},
            "redis": {"somaxconn": 0.9, "rmem": 0.7, "thp": 0.3},
            "npb": {"somaxconn": 0.02, "rmem": 0.01, "thp": 0.9},
        }
        matrix = cross_similarity_matrix(importances, ["nginx", "redis", "npb"])
        assert matrix.shape == (3, 3)
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.allclose(matrix, matrix.T)
        # nginx-redis similarity far higher than nginx-npb, as in Figure 5.
        assert matrix[0, 1] > 0.9
        assert matrix[0, 2] < 0.6

    def test_similarity_report_renders(self):
        matrix = np.eye(2)
        report = similarity_report(matrix, ["nginx", "redis"])
        assert "nginx" in report and "redis" in report


class TestSmoothing:
    def test_moving_average_handles_nan(self):
        values = [1.0, float("nan"), 3.0, None, 5.0]
        smoothed = moving_average(values, window=3)
        assert smoothed[0] == 1.0
        assert smoothed[2] == pytest.approx(2.0)
        assert smoothed[4] == pytest.approx(4.0)

    def test_moving_average_window_validation(self):
        with pytest.raises(ValueError):
            moving_average([1.0], window=0)

    def test_smooth_series_drops_all_nan_prefix(self):
        series = [(0.0, None), (1.0, 2.0), (2.0, 4.0)]
        smoothed = smooth_series(series, window=2)
        assert smoothed[0][0] == 1.0

    def test_downsample(self):
        series = [(float(i), float(i)) for i in range(100)]
        assert len(downsample(series, max_points=10)) == 10
        assert downsample(series[:5], max_points=10) == series[:5]


class TestStats:
    def test_classification_accuracy(self):
        assert classification_accuracy([True, False], [True, True]) == 0.5
        with pytest.raises(ValueError):
            classification_accuracy([True], [True, False])

    def test_failure_and_run_accuracy(self):
        crash_probability = [0.9, 0.8, 0.2, 0.4]
        actually_crashed = [True, True, False, False]
        failure_acc, run_acc = failure_and_run_accuracy(crash_probability, actually_crashed)
        assert failure_acc == 1.0
        assert run_acc == 1.0
        failure_acc, run_acc = failure_and_run_accuracy([0.2, 0.9], [True, False])
        assert failure_acc == 0.0
        assert run_acc == 0.0

    def test_normalized_mae(self):
        assert normalized_mae([1.0, 2.0], [1.0, 2.0]) == 0.0
        assert normalized_mae([2.0, 3.0], [1.0, 3.0]) == pytest.approx(0.25)
        assert normalized_mae([float("nan")], [1.0]) == 0.0

    def test_prediction_quality_summary_keys(self):
        summary = prediction_quality_summary([0.9, 0.1], [True, False], [1.0, 2.0],
                                             [1.0, 2.5])
        assert set(summary) == {"failure_accuracy", "run_accuracy", "normalized_mae"}


class TestReporting:
    def test_format_table_aligns_columns(self):
        table = format_table(("app", "value"), [("nginx", 1.234), ("redis", 22.5)],
                             title="Table X")
        lines = table.splitlines()
        assert lines[0] == "Table X"
        assert "nginx" in table and "22.500" in table
        assert set(lines[2]) <= {"-", " "}

    def test_format_series_downsamples(self):
        series = [(float(i), float(i) * 2) for i in range(200)]
        text = format_series(series, "time", "value", max_points=10)
        assert len(text.splitlines()) <= 2 + 20
