"""Unit tests for the simulated procfs, boot parameters and the space prober."""

import pytest

from repro.config.parameter import BoolParameter, IntParameter, ParameterKind, StringParameter
from repro.sysctl.bootparams import BOOT_PARAMETERS, boot_parameters
from repro.sysctl.probe import SpaceProber
from repro.sysctl.procfs import SYSCTL_CATALOG, ProcFS, runtime_parameters


class TestCatalog:
    def test_contains_paper_highlighted_parameters(self):
        paths = {entry.path for entry in SYSCTL_CATALOG}
        for name in ("net.core.somaxconn", "net.core.rmem_default",
                     "net.ipv4.tcp_keepalive_time", "vm.stat_interval",
                     "kernel.printk", "kernel.printk_delay", "vm.block_dump"):
            assert name in paths

    def test_entries_convert_to_runtime_parameters(self):
        for entry in SYSCTL_CATALOG:
            parameter = entry.to_parameter()
            assert parameter.kind is ParameterKind.RUNTIME
            assert parameter.validate(parameter.clip(parameter.default))

    def test_runtime_parameters_include_generic_tail(self):
        parameters = runtime_parameters(extra_generic=25, seed=3)
        assert len(parameters) == len(SYSCTL_CATALOG) + 25
        names = [p.name for p in parameters]
        assert len(names) == len(set(names))


class TestProcFS:
    def test_list_read_write(self):
        procfs = ProcFS(extra_generic=0)
        writable = procfs.list_writable()
        assert "net.core.somaxconn" in writable
        assert procfs.read("net.core.somaxconn") == "128"
        assert procfs.write("net.core.somaxconn", 4096)
        assert procfs.read("net.core.somaxconn") == "4096"

    def test_rejects_out_of_range(self):
        procfs = ProcFS(extra_generic=0)
        assert not procfs.write("vm.swappiness", 10_000)
        assert procfs.read("vm.swappiness") == "60"

    def test_rejects_bad_categorical(self):
        procfs = ProcFS(extra_generic=0)
        assert not procfs.write("net.ipv4.tcp_congestion_control", "warpspeed")
        assert procfs.write("net.ipv4.tcp_congestion_control", "bbr")

    def test_unknown_path_raises(self):
        procfs = ProcFS(extra_generic=0)
        with pytest.raises(FileNotFoundError):
            procfs.read("does.not.exist")
        with pytest.raises(FileNotFoundError):
            procfs.write("does.not.exist", 1)

    def test_fragile_write_far_out_of_range_crashes(self):
        procfs = ProcFS(extra_generic=0)
        entry = procfs.entry("vm.min_free_kbytes")
        assert entry.fragile
        assert not procfs.write("vm.min_free_kbytes", entry.maximum * 100)
        assert procfs.crashed
        with pytest.raises(RuntimeError):
            procfs.write("vm.swappiness", 10)

    def test_non_numeric_write_rejected(self):
        procfs = ProcFS(extra_generic=0)
        assert not procfs.write("vm.swappiness", "lots")

    def test_snapshot_copies_state(self):
        procfs = ProcFS(extra_generic=0)
        snapshot = procfs.snapshot()
        procfs.write("vm.swappiness", 10)
        assert snapshot["vm.swappiness"] == 60


class TestBootParameters:
    def test_named_parameters_exist(self):
        names = {p.name for p in BOOT_PARAMETERS}
        for name in ("boot.mitigations", "boot.isolcpus", "boot.maxcpus",
                     "boot.preempt", "boot.quiet"):
            assert name in names

    def test_all_are_boot_kind(self):
        for parameter in boot_parameters(extra_generic=5):
            assert parameter.kind is ParameterKind.BOOT_TIME

    def test_extra_generic_extends_count(self):
        assert len(boot_parameters(extra_generic=10)) == len(boot_parameters(0)) + 10


class TestSpaceProber:
    def test_infers_types_and_ranges(self):
        procfs = ProcFS(extra_generic=0)
        prober = SpaceProber(scale_factor=10, scale_rounds=3)
        probed = {record.path: record for record in prober.probe(procfs)}

        somaxconn = probed["net.core.somaxconn"]
        assert somaxconn.inferred_type == "int"
        assert somaxconn.minimum <= 128 <= somaxconn.maximum
        assert somaxconn.maximum > 128  # upward probing accepted larger values

        block_dump = probed["vm.block_dump"]
        assert block_dump.inferred_type == "bool"

        qdisc = probed["net.core.default_qdisc"]
        assert qdisc.inferred_type == "string"

    def test_probe_restores_defaults(self):
        procfs = ProcFS(extra_generic=0)
        SpaceProber().probe(procfs)
        if not procfs.crashed:
            assert procfs.read("net.core.somaxconn") == "128"

    def test_probed_parameters_convert(self):
        procfs = ProcFS(extra_generic=0)
        parameters = SpaceProber().probe_parameters(procfs)
        assert parameters
        kinds = {type(p) for p in parameters}
        assert IntParameter in kinds
        assert BoolParameter in kinds
        assert StringParameter in kinds
        for parameter in parameters:
            assert parameter.validate(parameter.clip(parameter.default))

    def test_string_parameters_limited_to_observed_value(self):
        procfs = ProcFS(extra_generic=0)
        parameters = {p.name: p for p in SpaceProber().probe_parameters(procfs)}
        qdisc = parameters["net.core.default_qdisc"]
        assert qdisc.domain_values() == ("pfifo_fast",)

    def test_scale_factor_validation(self):
        with pytest.raises(ValueError):
            SpaceProber(scale_factor=1)
