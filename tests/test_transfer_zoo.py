"""The surrogate model zoo and transfer-learning warm start.

Acceptance bar of the warm-start feature: publishing and adopting zoo
entries is deterministic and crash-safe, every degraded zoo state
(missing, empty, corrupted, incompatible) falls back to a cold start
rather than failing the run, and a warm-started session stays bit-exact
under checkpoint/resume — same trials, same provenance — because warm
start only changes the model's starting weights, never the RNG streams.
"""

from __future__ import annotations

import json
import os
import shutil

import numpy as np
import pytest

from repro.analysis.similarity import select_donor
from repro.config.encoding import ConfigEncoder
from repro.core.spec import ExperimentSpec
from repro.core.wayfinder import Wayfinder
from repro.deeptune.importance import parameter_importance
from repro.deeptune.model import DeepTuneModel
from repro.deeptune.transfer import (
    ZOO_DIR_NAME,
    ZOO_INDEX_NAME,
    ZooError,
    load_zoo_index,
    load_zoo_model,
    publish_zoo_entry,
    space_fingerprint,
    zoo_directory,
    zoo_entry_id,
)
from repro.platform.lifecycle import CallbackObserver
from repro.platform.results import ResultsStore
from repro.vm.os_model import linux_os_model

from tests.conftest import SMALL_SPACE_OPTIONS

#: keeps the model-guided phases cheap but active (mirrors
#: tests/test_checkpoint_resume.py).
DEEPTUNE_OPTIONS = {"warmup_iterations": 3, "candidate_pool_size": 32,
                    "training_steps_per_iteration": 4, "hidden_dims": [24, 12],
                    "n_centroids": 8}

#: space seed shared by donors and targets — fingerprint compatibility
#: requires the same space (version, seed, architecture, space_options).
SEED = 7


def _spec(application, warm_start=None, seed=SEED, **overrides):
    fields = dict(application=application, metric="throughput",
                  algorithm="deeptune", favor="runtime", seed=seed,
                  iterations=8, space_options=SMALL_SPACE_OPTIONS,
                  algorithm_options=DEEPTUNE_OPTIONS, warm_start=warm_start)
    fields.update(overrides)
    return ExperimentSpec(**fields)


def _trained_model(encoder, seed=3, observations=12):
    """A small trained DeepTune model over *encoder*'s space."""
    model = DeepTuneModel(input_dim=encoder.width, hidden_dims=(24, 12),
                          n_centroids=8, seed=seed)
    rng = np.random.default_rng(seed)
    for index in range(observations):
        vector = rng.random(encoder.width)
        crashed = index % 5 == 0
        model.add_observation(vector, None if crashed else 100.0 + index,
                              crashed)
    model.fit_incremental(steps=10)
    return model


def _importance(encoder, seed=3):
    rng = np.random.default_rng(seed)
    features = rng.random((16, encoder.width))
    targets = rng.random(16) * 100.0
    return parameter_importance(encoder, features, targets)


@pytest.fixture
def small_encoder(small_linux_model):
    return ConfigEncoder(small_linux_model.space)


class TestZooStore:
    def test_publish_and_load_round_trip(self, tmp_path, small_encoder):
        zoo = str(tmp_path / "zoo")
        model = _trained_model(small_encoder)
        entry = publish_zoo_entry(zoo, "nginx", small_encoder, model,
                                  _importance(small_encoder),
                                  metadata={"experiment": "exp-a"})
        assert entry is not None
        assert entry["application"] == "nginx"
        assert entry["fingerprint"] == space_fingerprint(small_encoder)
        assert entry["observations"] == model.observation_count

        index = load_zoo_index(zoo)
        assert set(index) == {entry["id"]}
        restored = load_zoo_model(zoo, index[entry["id"]])
        probe = np.random.default_rng(0).random((4, small_encoder.width))
        assert np.allclose(restored.predict(probe).performance,
                           model.predict(probe).performance)

    def test_zoo_directory_accepts_campaign_parent(self, tmp_path,
                                                   small_encoder):
        campaign_dir = str(tmp_path)
        zoo = os.path.join(campaign_dir, ZOO_DIR_NAME)
        publish_zoo_entry(zoo, "nginx", small_encoder,
                          _trained_model(small_encoder),
                          _importance(small_encoder))
        assert zoo_directory(campaign_dir) == zoo
        assert zoo_directory(zoo) == zoo

    def test_merge_rule_prefers_more_observations(self, tmp_path,
                                                  small_encoder):
        zoo = str(tmp_path / "zoo")
        big = _trained_model(small_encoder, observations=12)
        small = _trained_model(small_encoder, seed=5, observations=4)
        first = publish_zoo_entry(zoo, "nginx", small_encoder, big,
                                  _importance(small_encoder),
                                  metadata={"experiment": "big"})
        # fewer observations: the existing entry wins, publish is a no-op
        assert publish_zoo_entry(zoo, "nginx", small_encoder, small,
                                 _importance(small_encoder),
                                 metadata={"experiment": "small"}) is None
        index = load_zoo_index(zoo)
        assert index[first["id"]]["experiment"] == "big"

    def test_unobserved_model_is_not_published(self, tmp_path, small_encoder):
        zoo = str(tmp_path / "zoo")
        empty = DeepTuneModel(input_dim=small_encoder.width)
        assert publish_zoo_entry(zoo, "nginx", small_encoder, empty,
                                 _importance(small_encoder)) is None
        assert load_zoo_index(zoo) == {}

    def test_corrupt_index_reads_as_empty(self, tmp_path):
        zoo = tmp_path / "zoo"
        zoo.mkdir()
        (zoo / ZOO_INDEX_NAME).write_text("{not json")
        assert load_zoo_index(str(zoo)) == {}

    def test_torn_model_file_raises_zoo_error(self, tmp_path, small_encoder):
        zoo = str(tmp_path / "zoo")
        entry = publish_zoo_entry(zoo, "nginx", small_encoder,
                                  _trained_model(small_encoder),
                                  _importance(small_encoder))
        model_path = os.path.join(zoo, entry["model_file"])
        with open(model_path, "rb") as handle:
            payload = handle.read()
        with open(model_path, "wb") as handle:
            handle.write(payload[:len(payload) // 2])  # torn write
        with pytest.raises(ZooError):
            load_zoo_model(zoo, entry)


class TestDonorSelection:
    def _entry(self, application, importance, fingerprint="f00",
               observations=10, entry_id=None):
        return {"id": entry_id or zoo_entry_id(application, fingerprint),
                "application": application, "fingerprint": fingerprint,
                "observations": observations, "importance": importance}

    def test_picks_most_similar_compatible_donor(self):
        target = {"a": 1.0, "b": 0.0, "c": 0.5}
        entries = [
            self._entry("redis", {"a": 0.9, "b": 0.1, "c": 0.5}),
            self._entry("npb", {"a": 0.0, "b": 1.0, "c": 0.0}),
            self._entry("sqlite", target, fingerprint="other"),  # wrong space
            self._entry("nginx", target),  # the target itself
        ]
        selection = select_donor(entries, "nginx", "f00", target)
        assert selection is not None
        entry, score = selection
        assert entry["application"] == "redis"
        assert score > 0.9

    def test_threshold_and_explicit_donor(self):
        target = {"a": 1.0, "b": 0.0}
        entries = [self._entry("redis", {"a": 0.0, "b": 1.0}),
                   self._entry("npb", {"a": 0.8, "b": 0.2})]
        # orthogonal donor filtered by the similarity floor
        assert select_donor(entries, "nginx", "f00", target,
                            min_similarity=0.99) is None
        forced = select_donor(entries, "nginx", "f00", target, donor="redis")
        assert forced is None  # redis scores 0 < default floor
        entry, _ = select_donor(entries, "nginx", "f00", target, donor="npb")
        assert entry["application"] == "npb"


class TestWarmStartResolution:
    def _populate(self, zoo, applications=("nginx", "redis")):
        """Publish trained donors for *applications* over the shared space."""
        for application in applications:
            wayfinder = Wayfinder.from_spec(_spec(application))
            result = wayfinder.specialize()
            encoder = wayfinder.algorithm.encoder
            features, objectives, _ = result.history.training_arrays(encoder)
            entry = publish_zoo_entry(
                zoo, application, encoder, wayfinder.algorithm.model,
                parameter_importance(encoder, features, objectives),
                metadata={"experiment": "donor-" + application})
            assert entry is not None

    def test_adopts_donor_and_records_provenance(self, tmp_path):
        zoo = str(tmp_path / "zoo")
        self._populate(zoo)
        # no explicit warmup_iterations: adoption defaults it to 0 (the
        # paper's TL configuration — model-guided from iteration 0)
        options = {key: value for key, value in DEEPTUNE_OPTIONS.items()
                   if key != "warmup_iterations"}
        wayfinder = Wayfinder.from_spec(_spec(
            "sqlite", warm_start={"zoo": zoo, "min_similarity": 0.0},
            algorithm_options=options))
        assert wayfinder.warm_start is not None
        assert wayfinder.warm_start["donor"] in ("nginx", "redis")
        assert 0.0 <= wayfinder.warm_start["similarity"] <= 1.0
        assert wayfinder.warm_start["observations"] > 0
        assert wayfinder.algorithm.warmup_iterations == 0
        assert wayfinder.algorithm.provenance == wayfinder.warm_start
        result = wayfinder.specialize()
        assert result.best_performance is not None

    def test_missing_and_empty_zoo_cold_start(self, tmp_path):
        missing = Wayfinder.from_spec(_spec(
            "sqlite", warm_start={"zoo": str(tmp_path / "nowhere")}))
        assert missing.warm_start is None
        empty = tmp_path / "zoo"
        empty.mkdir()
        assert Wayfinder.from_spec(_spec(
            "sqlite", warm_start={"zoo": str(empty)})).warm_start is None

    def test_incompatible_space_cold_start(self, tmp_path):
        """Donors trained on a different space never transfer."""
        zoo = str(tmp_path / "zoo")
        other = linux_os_model(version="v4.19", seed=SEED, extra_compile=10,
                               extra_runtime=6, extra_boot=2)
        encoder = ConfigEncoder(other.space)
        publish_zoo_entry(zoo, "nginx", encoder, _trained_model(encoder),
                          _importance(encoder))
        wayfinder = Wayfinder.from_spec(_spec(
            "sqlite", warm_start={"zoo": zoo, "min_similarity": 0.0}))
        assert wayfinder.warm_start is None
        assert wayfinder.algorithm.warmup_iterations == \
            DEEPTUNE_OPTIONS["warmup_iterations"]

    def test_corrupted_entry_cold_start(self, tmp_path, small_encoder):
        """A torn donor model file degrades to cold start, not a crash."""
        zoo = str(tmp_path / "zoo")
        self._populate(zoo, applications=("nginx",))
        for entry in load_zoo_index(zoo).values():
            with open(os.path.join(zoo, entry["model_file"]), "wb") as handle:
                handle.write(b"torn")
        wayfinder = Wayfinder.from_spec(_spec(
            "sqlite", warm_start={"zoo": zoo, "min_similarity": 0.0}))
        assert wayfinder.warm_start is None

    def test_similarity_floor_cold_start(self, tmp_path):
        zoo = str(tmp_path / "zoo")
        self._populate(zoo, applications=("nginx",))
        wayfinder = Wayfinder.from_spec(_spec(
            "sqlite", warm_start={"zoo": zoo, "min_similarity": 1.0}))
        assert wayfinder.warm_start is None

    def test_warm_start_ignored_for_other_algorithms(self, tmp_path):
        zoo = str(tmp_path / "zoo")
        self._populate(zoo, applications=("nginx",))
        wayfinder = Wayfinder.from_spec(_spec(
            "sqlite", warm_start={"zoo": zoo, "min_similarity": 0.0},
            algorithm="random", algorithm_options={}))
        assert wayfinder.warm_start is None


class TestWarmStartResume:
    def test_checkpoint_resume_is_bit_exact(self, tmp_path):
        """A warm-started run resumed mid-way reproduces the full run."""
        zoo = str(tmp_path / "zoo")
        TestWarmStartResolution()._populate(zoo, applications=("nginx",))
        spec = _spec("sqlite", warm_start={"zoo": zoo, "min_similarity": 0.0},
                     name="warm-ckpt")

        def trial_tuple(record):
            return (record.index, record.configuration, record.objective,
                    record.crashed, record.duration_s, record.started_at_s,
                    record.worker)

        store = ResultsStore(str(tmp_path / "results"))
        wayfinder = Wayfinder.from_spec(spec)
        assert wayfinder.warm_start is not None
        wayfinder.enable_checkpointing(store, name=spec.name, every=1)
        archived = []

        def archive(session, path):
            copy = "{}.at{}".format(path, len(session.history))
            shutil.copy(path, copy)
            archived.append((len(session.history), copy))

        wayfinder.add_observer(CallbackObserver(on_checkpoint=archive))
        reference = [trial_tuple(r)
                     for r in wayfinder.specialize().history]

        resume_points = [e for e in archived if 0 < e[0] < len(reference)]
        assert resume_points
        for _, path in resume_points:
            resumed = Wayfinder.resume(path)
            # provenance rides the checkpointed algorithm state
            assert resumed.algorithm.provenance == wayfinder.warm_start
            result = resumed.specialize()
            assert [trial_tuple(r) for r in result.history] == reference

    def test_warm_start_does_not_change_proposal_stream_seeding(self,
                                                                tmp_path):
        """Warm start changes model weights only: the random warmup stream
        (forced via explicit warmup_iterations) is untouched, so the first
        warmup trials match the cold run exactly."""
        zoo = str(tmp_path / "zoo")
        TestWarmStartResolution()._populate(zoo, applications=("nginx",))
        options = dict(DEEPTUNE_OPTIONS)  # keeps warmup_iterations=3
        cold = Wayfinder.from_spec(_spec("sqlite", algorithm_options=options))
        warm = Wayfinder.from_spec(_spec(
            "sqlite", warm_start={"zoo": zoo, "min_similarity": 0.0},
            algorithm_options=options))
        assert warm.warm_start is not None
        warmup = DEEPTUNE_OPTIONS["warmup_iterations"]
        cold_history = cold.specialize().history
        warm_history = warm.specialize().history
        assert ([r.configuration for r in cold_history][:warmup]
                == [r.configuration for r in warm_history][:warmup])


class TestCampaignZoo:
    def _campaign(self, name, applications, base_extra=None):
        from repro.core.campaign import CampaignSpec

        base = {"metric": "auto", "iterations": 6, "favor": "runtime",
                "space_options": SMALL_SPACE_OPTIONS,
                "algorithm_options": DEEPTUNE_OPTIONS}
        base.update(base_extra or {})
        return CampaignSpec(name=name, applications=list(applications),
                            algorithms=["deeptune"], seeds=[SEED], base=base)

    def test_campaign_populates_zoo_and_warm_starts(self, tmp_path):
        from repro.analysis.campaign_report import (campaign_report_document,
                                                    render_campaign_report)
        from repro.platform.campaign_runner import CampaignRunner

        donor_dir = str(tmp_path / "donors")
        result = CampaignRunner(self._campaign("donors", ["nginx", "redis"]),
                                donor_dir, procs=1).run()
        assert result.ok
        zoo = os.path.join(donor_dir, ZOO_DIR_NAME)
        index = load_zoo_index(zoo)
        assert {entry["application"] for entry in index.values()} \
            == {"nginx", "redis"}
        # a cold campaign's text report carries no warm-start table
        assert "Warm-started" not in render_campaign_report(donor_dir)

        target_dir = str(tmp_path / "targets")
        warm = CampaignRunner(
            self._campaign("targets", ["sqlite"], base_extra={
                "warm_start": {"zoo": donor_dir, "min_similarity": 0.0}}),
            target_dir, procs=1).run()
        assert warm.ok
        (entry,) = warm.completed
        provenance = entry["summary"]["warm_start"]
        assert provenance["donor"] in ("nginx", "redis")
        document = campaign_report_document(target_dir)
        assert document["warm_start"]["rows"] == [[
            entry["name"], provenance["donor"], provenance["similarity"],
            provenance["observations"]]]
        assert "Warm-started" in render_campaign_report(target_dir)
        # the target campaign published its own entry into its own zoo
        own = load_zoo_index(os.path.join(target_dir, ZOO_DIR_NAME))
        assert {e["application"] for e in own.values()} == {"sqlite"}


class TestSpecSurface:
    def test_validation(self):
        with pytest.raises(ValueError, match="warm_start"):
            ExperimentSpec(application="nginx", warm_start="zoo/")
        with pytest.raises(ValueError, match="'zoo'"):
            ExperimentSpec(application="nginx", warm_start={})
        with pytest.raises(ValueError, match="min_similarity"):
            ExperimentSpec(application="nginx",
                           warm_start={"zoo": "z", "min_similarity": 2.0})
        with pytest.raises(ValueError):
            ExperimentSpec(application="nginx",
                           warm_start={"zoo": "z", "bogus": 1})

    def test_round_trip_and_old_documents(self):
        spec = _spec("nginx", warm_start={"zoo": "campaign/",
                                          "min_similarity": 0.4})
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        document = {key: value for key, value in spec.to_dict().items()
                    if key != "warm_start"}
        assert ExperimentSpec.from_dict(document).warm_start is None

    def test_jobfile_round_trip(self, tmp_path, small_space):
        from repro.config.jobfile import JobFile, dump_job_file, load_job_file

        job = JobFile(name="warm", os_name="linux", application="sqlite",
                      bench_tool="sqlite-bench", metric="auto",
                      space=small_space, warm_start={"zoo": "campaign/"})
        path = str(tmp_path / "job.json")
        dump_job_file(job, path)
        loaded = load_job_file(path)
        assert loaded.warm_start == {"zoo": "campaign/"}
        assert loaded.to_spec().warm_start == {"zoo": "campaign/"}

    def test_cli_flags(self):
        from repro.cli import _spec_from_args, build_parser

        args = build_parser().parse_args(
            ["run", "--application", "sqlite", "--warm-start", "campaign/",
             "--warm-start-min-similarity", "0.4"])
        spec = _spec_from_args(args)
        assert spec.warm_start == {"zoo": "campaign/", "min_similarity": 0.4}
        args = build_parser().parse_args(["run"])
        assert _spec_from_args(args).warm_start is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--warm-start-min-similarity", "1.5",
                 "--warm-start", "z"])

    def test_min_similarity_flag_requires_warm_start(self):
        from repro.cli import _spec_from_args, build_parser

        args = build_parser().parse_args(
            ["run", "--warm-start-min-similarity", "0.4"])
        with pytest.raises(SystemExit):
            _spec_from_args(args)
