"""Unit tests for the application performance models."""

import random

import pytest

from repro.apps.base import Application, BenchmarkTool
from repro.apps.nginx import NginxApplication, WrkBenchmark
from repro.apps.npb import NPBApplication
from repro.apps.perfmodel import (
    choice_bonus,
    linear_preference,
    log_peak,
    log_saturating,
    saturating,
)
from repro.apps.redis import RedisApplication
from repro.apps.registry import (
    available_applications,
    default_bench_tool_for,
    get_application,
    get_bench_tool,
)
from repro.apps.sqlite import SQLiteApplication
from repro.apps.unikraft_nginx import UnikraftNginxApplication
from repro.vm.machine import PAPER_TESTBED, RISCV_EMBEDDED_BOARD


class TestPerfModelHelpers:
    def test_log_peak_maximal_at_best(self):
        assert log_peak(8192, best=8192) == pytest.approx(1.0)
        assert log_peak(128, best=8192) < log_peak(4096, best=8192)
        assert log_peak(10 ** 7, best=8192) < 1.0

    def test_log_peak_requires_positive_best(self):
        with pytest.raises(ValueError):
            log_peak(1, best=0)

    def test_log_saturating_half_point(self):
        assert log_saturating(100, half_point=100) == pytest.approx(0.5)
        assert log_saturating(0, half_point=100) == 0.0
        assert log_saturating(10 ** 9, half_point=100) < 1.0

    def test_saturating(self):
        assert saturating(100, half_point=100) == pytest.approx(0.5)
        assert saturating(0, half_point=10) == 0.0

    def test_linear_preference_bounds(self):
        assert linear_preference(0, 0, 100, prefer_low=True) == 1.0
        assert linear_preference(100, 0, 100, prefer_low=True) == 0.0
        assert linear_preference(100, 0, 100, prefer_low=False) == 1.0
        assert linear_preference(500, 0, 100, prefer_low=True) == 0.0

    def test_choice_bonus(self):
        assert choice_bonus("bbr", {"bbr": 5.0}) == 5.0
        assert choice_bonus("reno", {"bbr": 5.0}, default=1.0) == 1.0


def default_config(model):
    return model.space.default_configuration()


class TestNginxModel:
    app = NginxApplication()

    def test_default_throughput_in_paper_band(self, small_linux_model):
        value = self.app.performance(default_config(small_linux_model))
        assert 14000 <= value <= 17500

    def test_tuned_configuration_beats_default(self, small_linux_model):
        default = default_config(small_linux_model)
        tuned = default.with_values({
            "net.core.somaxconn": 8192,
            "net.core.rmem_default": 8388608,
            "net.ipv4.tcp_keepalive_time": 60,
            "net.ipv4.tcp_congestion_control": "bbr",
            "vm.stat_interval": 120,
            "kernel.printk": 1,
        })
        improvement = self.app.performance(tuned) / self.app.performance(default)
        assert improvement > 1.1

    def test_debug_logging_hurts(self, small_linux_model):
        default = default_config(small_linux_model)
        noisy = default.with_values({"kernel.printk_delay": 1000, "vm.block_dump": True})
        assert self.app.performance(noisy) < self.app.performance(default)

    def test_kasan_roughly_halves_throughput(self, small_linux_model):
        default = default_config(small_linux_model)
        kasan = default.with_values({"CONFIG_KASAN": True, "CONFIG_DEBUG_KERNEL": True})
        ratio = self.app.performance(kasan) / self.app.performance(default)
        assert ratio < 0.6

    def test_core_restriction_reduces_throughput(self, small_linux_model):
        default = default_config(small_linux_model)
        restricted = default.with_values({"boot.maxcpus": 2})
        assert self.app.performance(restricted) < self.app.performance(default) * 0.5

    def test_sensitive_parameters_present_in_space(self, small_linux_model):
        for name in self.app.sensitive_parameters():
            assert name in small_linux_model.space

    def test_direction(self):
        assert self.app.maximize
        assert self.app.is_improvement(2.0, 1.0)


class TestRedisModel:
    app = RedisApplication()

    def test_default_throughput_in_paper_band(self, small_linux_model):
        value = self.app.performance(default_config(small_linux_model))
        assert 52000 <= value <= 64000

    def test_thp_never_helps_redis(self, small_linux_model):
        default = default_config(small_linux_model)
        never = default.with_values(
            {"sys.kernel.mm.transparent_hugepage.enabled": "never"})
        always = default.with_values(
            {"sys.kernel.mm.transparent_hugepage.enabled": "always"})
        assert self.app.performance(never) > self.app.performance(always)

    def test_shares_network_sensitivity_with_nginx(self):
        nginx = set(NginxApplication().sensitive_parameters())
        redis = set(self.app.sensitive_parameters())
        overlap = nginx & redis
        assert len(overlap) >= 8

    def test_single_core_unaffected_by_maxcpus(self, small_linux_model):
        default = default_config(small_linux_model)
        restricted = default.with_values({"boot.maxcpus": 2})
        ratio = self.app.performance(restricted) / self.app.performance(default)
        assert 0.95 <= ratio <= 1.05


class TestSQLiteModel:
    app = SQLiteApplication()

    def test_default_latency_in_paper_band(self, small_linux_model):
        value = self.app.performance(default_config(small_linux_model))
        assert 250 <= value <= 330

    def test_direction_is_minimize(self):
        assert not self.app.maximize
        assert self.app.is_improvement(100.0, 200.0)

    def test_default_is_near_optimal(self, small_linux_model):
        # Random runtime perturbations should rarely improve latency by much,
        # reproducing the paper's observation that SQLite's default is already
        # close to the best configuration found.
        default = default_config(small_linux_model)
        base = self.app.performance(default)
        rng = random.Random(5)
        space = small_linux_model.space
        improvements = 0
        for _ in range(40):
            config = space.mutate_configuration(default, rng, mutation_rate=0.3)
            if self.app.performance(config) < base * 0.97:
                improvements += 1
        assert improvements <= 4

    def test_block_dump_hurts_latency(self, small_linux_model):
        default = default_config(small_linux_model)
        noisy = default.with_values({"vm.block_dump": True})
        assert self.app.performance(noisy) > self.app.performance(default) + 50

    def test_storage_sensitivities_not_network(self):
        sensitive = set(self.app.sensitive_parameters())
        assert "vm.dirty_ratio" in sensitive
        assert "net.core.somaxconn" not in sensitive


class TestNPBModel:
    app = NPBApplication()

    def test_default_rate_in_paper_band(self, small_linux_model):
        value = self.app.performance(default_config(small_linux_model))
        assert 1400 <= value <= 1600

    def test_os_configuration_impact_is_small(self, small_linux_model):
        default = default_config(small_linux_model)
        base = self.app.performance(default)
        tuned = default.with_values({
            "sys.kernel.mm.transparent_hugepage.enabled": "always",
            "kernel.numa_balancing": 0,
            "vm.nr_hugepages": 512,
        })
        improvement = self.app.performance(tuned) / base
        assert 1.0 < improvement < 1.06

    def test_emulated_hardware_is_much_slower(self, small_linux_model):
        default = default_config(small_linux_model)
        fast = self.app.performance(default, PAPER_TESTBED)
        slow = self.app.performance(default, RISCV_EMBEDDED_BOARD)
        assert slow < fast / 5


class TestUnikraftNginxModel:
    app = UnikraftNginxApplication()

    def test_good_configuration_reaches_high_throughput(self, unikraft_model):
        default = unikraft_model.space.default_configuration()
        tuned = default.with_values({
            "nginx.worker_connections": 16384,
            "nginx.keepalive_requests": 10000,
            "nginx.access_log": False,
            "uk.allocator": "mimalloc",
            "uk.lwip_tcp_snd_buf_kb": 1024,
            "uk.lwip_tcp_wnd_kb": 1024,
            "uk.lwip_pbuf_pool_size": 4096,
            "uk.lwip_nagle_off": True,
            "uk.heap_pages": 65536,
        })
        assert self.app.performance(tuned) > 40000
        assert self.app.performance(tuned) > self.app.performance(default) * 1.3

    def test_debug_build_is_much_slower(self, unikraft_model):
        default = unikraft_model.space.default_configuration()
        debug = default.with_values({"uk.debug_printk": True, "uk.trace": True})
        assert self.app.performance(debug) < self.app.performance(default) * 0.6


class TestBenchmarkTools:
    def test_measurement_noise_is_small_and_unbiased(self, small_linux_model):
        app = NginxApplication()
        bench = WrkBenchmark()
        rng = random.Random(11)
        config = default_config(small_linux_model)
        true_value = app.performance(config, PAPER_TESTBED)
        samples = [bench.measure(app, config, PAPER_TESTBED, rng).value for _ in range(60)]
        mean = sum(samples) / len(samples)
        assert abs(mean - true_value) / true_value < 0.02
        assert all(abs(s - true_value) / true_value < 0.12 for s in samples)

    def test_run_duration_positive(self):
        bench = WrkBenchmark()
        rng = random.Random(2)
        assert bench.run_duration_s(rng) > 0


class TestRegistry:
    def test_available_applications(self):
        assert set(available_applications()) == {
            "nginx", "redis", "sqlite", "npb", "unikraft-nginx"}

    def test_get_application_and_bench(self):
        assert isinstance(get_application("redis"), Application)
        assert isinstance(get_bench_tool("wrk"), BenchmarkTool)
        assert isinstance(get_bench_tool("nginx"), BenchmarkTool)
        assert isinstance(default_bench_tool_for("sqlite"), BenchmarkTool)

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError):
            get_application("postgres")
        with pytest.raises(KeyError):
            get_bench_tool("ab")
        with pytest.raises(KeyError):
            default_bench_tool_for("postgres")
