"""Asynchronous (barrier-free) execution: equivalence, determinism, scheduling.

The async engine's acceptance bar mirrors the batch engine's:

1. ``execution="async"`` with ``workers=1`` reproduces the strictly
   sequential propose→evaluate→observe loop trial for trial for every
   registered algorithm (the reference loop is the same inline
   re-implementation ``tests/test_batch_execution.py`` pins batch mode to).
2. A checkpoint taken at *any completion event* — async checkpoints fire at
   trial granularity, not batch boundaries — resumes record-for-record
   identically to the uninterrupted async run, for every algorithm at
   ``workers ∈ {1, 4}`` (modeled on ``tests/test_checkpoint_resume.py``;
   in-flight trials are first-class backend checkpoint state).
3. The scheduler really is barrier-free: after the default-configuration
   trial seeds the horizon, every worker runs back-to-back trials (a worker
   never idles waiting for a straggler), trials overlap in virtual time,
   proposals dedupe against in-flight configurations, and causality is
   preserved (no trial starts before the completion event that triggered
   its proposal).
"""

from __future__ import annotations

import shutil
from collections import defaultdict

import pytest

from repro.core.spec import ExperimentSpec
from repro.core.wayfinder import Wayfinder
from repro.platform.history import ExplorationHistory
from repro.platform.lifecycle import CallbackObserver
from repro.platform.metrics import ThroughputMetric, metric_for_application
from repro.platform.results import ResultsStore, load_checkpoint_file
from repro.platform.runner import SearchSession
from repro.search.registry import available_algorithms, create_algorithm

from tests.conftest import SMALL_SPACE_OPTIONS, make_pipeline
from tests.test_batch_execution import (
    ALGO_OPTIONS,
    _build_algorithm,
    _reference_sequential_run,
)


def _trial_tuple(record):
    return (record.index, record.configuration, record.objective,
            record.crashed, record.duration_s, record.started_at_s,
            record.build_skipped, record.worker)


def _spec(algorithm: str, workers: int, iterations: int,
          **overrides) -> ExperimentSpec:
    fields = dict(
        application="nginx", metric="throughput", algorithm=algorithm,
        favor="runtime", seed=7, iterations=iterations, workers=workers,
        batch_size=workers, execution="async",
        space_options=SMALL_SPACE_OPTIONS,
        algorithm_options=ALGO_OPTIONS[algorithm],
        name="async-{}-w{}".format(algorithm, workers))
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestAsyncSequentialEquivalence:
    @pytest.mark.parametrize("name", sorted(ALGO_OPTIONS))
    def test_async_worker1_reproduces_sequential_loop(self, name,
                                                      small_linux_model):
        iterations = 6 if name == "unicorn" else 8
        metric = metric_for_application("nginx")

        reference = _reference_sequential_run(
            make_pipeline(small_linux_model, "nginx"),
            _build_algorithm(name, small_linux_model.space),
            metric, iterations)

        session = SearchSession(
            make_pipeline(small_linux_model, "nginx"),
            _build_algorithm(name, small_linux_model.space),
            metric, evaluate_default_first=True, execution="async")
        result = session.run(iterations=iterations)

        assert result.execution == "async"
        assert len(result.history) == len(reference) == iterations
        for ours, theirs in zip(result.history, reference):
            assert _trial_tuple(ours)[:6] == (
                theirs.index, theirs.configuration, theirs.objective,
                theirs.crashed, theirs.duration_s, theirs.started_at_s)

    def test_registry_covered(self):
        assert set(ALGO_OPTIONS) == set(available_algorithms())


def _full_async_run_with_checkpoints(spec, tmp_path):
    """Run to completion, archiving the checkpoint of every completion event.

    Returns (history tuples, [(trials_done, archived_path), ...]).
    """
    wayfinder = Wayfinder.from_spec(spec)
    store = ResultsStore(str(tmp_path))
    wayfinder.enable_checkpointing(store, name=spec.name, every=1)
    archived = []

    def archive(session, path):
        copy = "{}.at{}".format(path, len(session.history))
        shutil.copy(path, copy)
        archived.append((len(session.history), copy))

    wayfinder.add_observer(CallbackObserver(on_checkpoint=archive))
    result = wayfinder.specialize()
    return [_trial_tuple(r) for r in result.history], archived


class TestAsyncResumeDeterminism:
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("name", sorted(ALGO_OPTIONS))
    def test_resume_at_any_completion_event(self, name, workers, tmp_path):
        iterations = 5 if name == "unicorn" else 9
        spec = _spec(name, workers, iterations)
        reference, archived = _full_async_run_with_checkpoints(spec, tmp_path)
        assert len(reference) == iterations

        # async checkpoints fire once per completion event, so every interior
        # trial count is a valid interruption point
        resume_points = [entry for entry in archived
                         if 0 < entry[0] < iterations]
        assert len(resume_points) == iterations - 1
        for trials_done, path in resume_points:
            resumed = Wayfinder.resume(path)
            session_history = resumed.build_session().session.history
            assert len(session_history) == trials_done
            result = resumed.specialize()
            assert [_trial_tuple(r) for r in result.history] == reference

    def test_checkpoint_embeds_in_flight_trials(self, tmp_path):
        spec = _spec("random", 4, 9)
        _, archived = _full_async_run_with_checkpoints(spec, tmp_path)
        # at a mid-run completion event the other workers are still busy
        from repro.platform.results import decode_state

        mid = [path for trials_done, path in archived if trials_done == 4][0]
        document = load_checkpoint_file(mid)
        state = decode_state(document["state"])
        in_flight = state["backend"]["in_flight"]
        assert in_flight, "expected in-flight trials at a mid-run event"
        assert all("configuration" in entry and "worker" in entry
                   for entry in in_flight)

    def test_resume_can_extend_the_budget(self, tmp_path):
        spec = _spec("random", 4, 6)
        reference, archived = _full_async_run_with_checkpoints(spec, tmp_path)
        result = Wayfinder.resume(archived[-1][1]).specialize(iterations=10)
        assert result.iterations == 10
        assert [_trial_tuple(r) for r in result.history][:6] == reference


class TestAsyncScheduling:
    def _result(self, algorithm="random", workers=4, iterations=13,
                observers=(), **overrides):
        wayfinder = Wayfinder.from_spec(
            _spec(algorithm, workers, iterations, **overrides))
        for observer in observers:
            wayfinder.add_observer(observer)
        return wayfinder.specialize()

    def test_workers_run_back_to_back(self):
        """No barrier: each worker starts its next trial the moment its
        previous one completes (modulo the default-trial horizon)."""
        result = self._result(iterations=13)
        per_worker = defaultdict(list)
        for record in list(result.history)[1:]:  # default trial seeds worker 0
            per_worker[record.worker].append(record)
        assert len(per_worker) == 4
        for records in per_worker.values():
            records.sort(key=lambda r: r.started_at_s)
            for previous, current in zip(records, records[1:]):
                assert current.started_at_s == pytest.approx(
                    previous.finished_at_s)

    def test_trials_overlap_in_virtual_time(self):
        result = self._result(iterations=13)
        records = sorted(result.history, key=lambda r: r.started_at_s)
        assert any(second.started_at_s < first.finished_at_s
                   for first, second in zip(records, records[1:]))

    def test_causality_no_trial_precedes_the_default_observation(self):
        result = self._result(iterations=13)
        default = result.history[0]
        assert default.started_at_s == 0.0
        for record in list(result.history)[1:]:
            assert record.started_at_s >= default.finished_at_s

    def test_async_compresses_elapsed_time_vs_batch(self):
        asynchronous = self._result(iterations=13)
        batch = Wayfinder.from_spec(
            _spec("random", 4, 13, execution="batch")).specialize()
        assert asynchronous.total_time_s < batch.total_time_s

    def test_iteration_budget_exact_with_ragged_fleet(self):
        result = self._result(iterations=7)
        assert result.iterations == 7
        assert result.stop_reason == "iterations"

    def test_time_budget_drains_in_flight_trials(self):
        result = self._result(iterations=None, time_budget_s=2500.0)
        assert result.stop_reason == "time-budget"
        assert result.history.total_elapsed_s() >= 2500.0

    def test_on_dispatch_fires_per_trial(self):
        events = []
        observer = CallbackObserver(
            on_dispatch=lambda s, c, w: events.append(("dispatch", w)),
            on_batch_start=lambda s, i, k: events.append(("batch", i, k)),
            on_trial=lambda s, r: events.append(("trial", r.index)))
        result = self._result(iterations=9, observers=[observer])
        dispatches = [e for e in events if e[0] == "dispatch"]
        trials = [e for e in events if e[0] == "trial"]
        batches = [e for e in events if e[0] == "batch"]
        assert len(dispatches) == result.iterations
        assert [index for _, index in trials] == list(range(9))
        # async sessions have no rounds: on_batch_start only marks the
        # default-configuration trial
        assert batches == [("batch", 0, 1)]
        assert {worker for _, worker in dispatches} == {0, 1, 2, 3}

    def test_pending_dedupe_no_duplicate_trials(self):
        for algorithm in ("random", "grid", "deeptune"):
            result = self._result(algorithm=algorithm, iterations=11)
            configurations = [r.configuration for r in result.history]
            assert len(set(configurations)) == len(configurations)

    def test_summary_surfaces_execution_and_utilization(self):
        result = self._result(iterations=13)
        summary = result.summary()
        assert summary["execution"] == "async"
        utilization = summary["worker_utilization"]
        assert len(utilization) == 4
        assert all(0.0 < value <= 1.0 for value in utilization)
        serial = Wayfinder.from_spec(_spec("random", 1, 5)).specialize()
        assert serial.summary()["worker_utilization"] == [1.0]

    def test_async_utilization_beats_batch(self):
        asynchronous = self._result(iterations=13)
        batch = Wayfinder.from_spec(
            _spec("random", 4, 13, execution="batch")).specialize()
        mean = lambda values: sum(values) / len(values)  # noqa: E731
        assert (mean(asynchronous.summary()["worker_utilization"])
                > mean(batch.summary()["worker_utilization"]))


class TestPendingAwareProposal:
    """propose(history, pending=...) dedupes without disturbing the RNG."""

    @pytest.mark.parametrize("name", sorted(ALGO_OPTIONS))
    def test_pending_empty_is_bit_identical(self, name, small_space):
        a = _build_algorithm(name, small_space)
        b = _build_algorithm(name, small_space)
        history = ExplorationHistory(ThroughputMetric())
        assert a.propose(history) == b.propose(history, pending=())

    @pytest.mark.parametrize("name", sorted(ALGO_OPTIONS))
    def test_pending_configuration_not_reproposed(self, name, small_space):
        probe = _build_algorithm(name, small_space)
        history = ExplorationHistory(ThroughputMetric())
        pending = probe.propose(history)
        fresh = _build_algorithm(name, small_space)
        assert fresh.propose(history, pending=[pending]) != pending

    def test_grid_skips_in_flight_plan_entries(self, small_space):
        grid = create_algorithm("grid", small_space, seed=9)
        other = create_algorithm("grid", small_space, seed=9)
        history = ExplorationHistory(ThroughputMetric())
        first = other.propose(history)
        second = other.propose(history, pending=[first])
        assert first != second
        # without pending, the same cursor would have yielded `first`
        assert grid.propose(history) == first
