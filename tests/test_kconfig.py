"""Unit tests for the synthetic Kconfig models (Linux, Unikraft, history)."""

import pytest

from repro.config.parameter import ParameterKind
from repro.kconfig.history import KCONFIG_OPTION_COUNTS, kconfig_growth_series, option_count
from repro.kconfig.linux import (
    VERSION_CENSUS,
    LinuxSpaceBuilder,
    linux_census,
    linux_experiment_space,
)
from repro.kconfig.model import KconfigGenerator
from repro.kconfig.unikraft import unikraft_nginx_space, unikraft_parameter_split


class TestKconfigGenerator:
    def test_generates_requested_counts(self):
        generator = KconfigGenerator(seed=3)
        options, constraints = generator.generate(
            n_bool=50, n_tristate=30, n_string=5, n_hex=5, n_int=10)
        assert len(options) == 100
        by_type = {}
        for option in options:
            by_type.setdefault(option.parameter.type_name, 0)
            by_type[option.parameter.type_name] += 1
        assert by_type["bool"] == 50
        assert by_type["tristate"] == 30
        assert by_type["string"] == 5
        assert by_type["hex"] == 5
        assert by_type["int"] == 10

    def test_deterministic_for_seed(self):
        first, _ = KconfigGenerator(seed=9).generate(20, 10, 2, 2, 5)
        second, _ = KconfigGenerator(seed=9).generate(20, 10, 2, 2, 5)
        assert [o.name for o in first] == [o.name for o in second]
        assert [o.fragile for o in first] == [o.fragile for o in second]

    def test_all_options_are_compile_time(self):
        options, _ = KconfigGenerator(seed=1).generate(10, 10, 1, 1, 3)
        assert all(o.parameter.kind is ParameterKind.COMPILE_TIME for o in options)

    def test_dependencies_reference_generated_options(self):
        options, constraints = KconfigGenerator(seed=1).generate(40, 40, 1, 1, 5,
                                                                 dependency_fraction=0.5)
        names = {o.name for o in options}
        for constraint in constraints:
            assert set(constraint.parameter_names()) <= names

    def test_some_footprint_costs_assigned(self):
        options, _ = KconfigGenerator(seed=1).generate(50, 50, 1, 1, 5)
        assert any(o.footprint_cost > 0 for o in options)


class TestLinuxSpaces:
    def test_census_matches_table1(self):
        census = linux_census("v6.0")
        assert census == {
            "bool": 7585, "tristate": 10034, "string": 154, "hex": 94,
            "int": 3405, "boot": 231, "runtime": 13328,
        }

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            LinuxSpaceBuilder("v9.99")

    def test_experiment_space_contains_named_knobs(self):
        space = linux_experiment_space(seed=2, extra_compile=10, extra_runtime=5,
                                       extra_boot=2)
        for name in ("CONFIG_NET", "net.core.somaxconn", "kernel.printk",
                     "boot.mitigations", "CONFIG_HZ", "vm.stat_interval"):
            assert name in space

    def test_experiment_space_has_all_three_kinds(self):
        space = linux_experiment_space(seed=2, extra_compile=10, extra_runtime=5,
                                       extra_boot=2)
        for kind in ParameterKind:
            assert space.parameters_of_kind(kind)

    def test_experiment_space_is_huge_but_finite_or_infinite(self):
        space = linux_experiment_space(seed=2, extra_compile=10, extra_runtime=5,
                                       extra_boot=2)
        assert space.log10_cardinality() > 50

    def test_default_configuration_is_constraint_valid(self):
        space = linux_experiment_space(seed=2, extra_compile=30, extra_runtime=10,
                                       extra_boot=4)
        assert space.is_valid(space.default_configuration())

    def test_builder_metadata(self):
        builder = LinuxSpaceBuilder("v4.19", seed=2)
        builder.experiment_space(extra_compile=20, extra_runtime=5, extra_boot=2)
        assert "CONFIG_KASAN" in builder.fragile_option_names()
        costs = builder.footprint_costs()
        assert costs["CONFIG_NET"] > 0
        assert "CONFIG_NET" in builder.essential_features("nginx")
        assert "CONFIG_EXT4_FS" in builder.essential_features("sqlite")
        assert builder.filler_option_metadata()

    def test_full_space_census_shape(self):
        # The full space is large; only check the per-type counts line up with
        # the census for a cheap version entry.
        builder = LinuxSpaceBuilder("v4.19", seed=0)
        census = builder.census()
        assert census["bool"] + census["tristate"] > 10000


class TestKconfigHistory:
    def test_growth_is_monotone(self):
        series = kconfig_growth_series()
        counts = [count for _, count in series]
        assert counts == sorted(counts)

    def test_v6_has_about_20k_options(self):
        assert 20000 <= option_count("v6.0") <= 22000

    def test_all_versions_have_years(self):
        from repro.kconfig.history import RELEASE_YEARS
        assert set(RELEASE_YEARS) == set(KCONFIG_OPTION_COUNTS)

    def test_unknown_version_raises(self):
        with pytest.raises(KeyError):
            option_count("v1.0")


class TestUnikraftSpace:
    def test_parameter_count_is_33(self):
        space = unikraft_nginx_space()
        assert len(space) == 33

    def test_split_10_application_23_os(self):
        space = unikraft_nginx_space()
        os_params, app_params = unikraft_parameter_split(space)
        assert len(os_params) == 23
        assert len(app_params) == 10

    def test_search_space_size_order_of_magnitude(self):
        # The paper reports ~3.7e13 permutations for the 33-parameter space
        # (counting a coarse value grid per integer option); enumerating every
        # integer value, as the cardinality here does, gives a larger but
        # still astronomically-sized space.
        space = unikraft_nginx_space()
        assert space.log10_cardinality() >= 13

    def test_default_valid(self):
        space = unikraft_nginx_space()
        assert space.is_valid(space.default_configuration())
