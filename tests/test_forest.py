"""Tests for the from-scratch random-forest regressor and its importances."""

import numpy as np
import pytest

from repro.config.encoding import ConfigEncoder
from repro.deeptune.forest import (
    RandomForestRegressor,
    RegressionTree,
    forest_parameter_importance,
)


def make_dataset(n=300, d=8, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    y = 10.0 * X[:, 2] + 4.0 * (X[:, 5] > 0.5) + rng.normal(0, 0.3, n)
    return X, y


class TestRegressionTree:
    def test_fits_step_function(self):
        rng = np.random.default_rng(1)
        X = rng.random((200, 3))
        y = np.where(X[:, 1] > 0.5, 10.0, 0.0)
        tree = RegressionTree(max_depth=3, rng=rng).fit(X, y)
        predictions = tree.predict(X)
        assert np.mean((predictions - y) ** 2) < 1.0
        assert int(np.argmax(tree.feature_importances_)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)
        tree = RegressionTree()
        with pytest.raises(RuntimeError):
            tree.predict(np.ones((1, 2)))
        with pytest.raises(ValueError):
            tree.fit(np.ones((3, 2)), np.ones(4))

    def test_constant_target_yields_leaf(self):
        X = np.random.default_rng(0).random((50, 4))
        y = np.full(50, 3.0)
        tree = RegressionTree().fit(X, y)
        assert np.allclose(tree.predict(X), 3.0)


class TestRandomForest:
    def test_predictions_track_target(self):
        X, y = make_dataset()
        forest = RandomForestRegressor(n_trees=20, seed=1).fit(X, y)
        predictions = forest.predict(X)
        correlation = np.corrcoef(predictions, y)[0, 1]
        assert correlation > 0.8

    def test_importances_identify_relevant_features(self):
        X, y = make_dataset()
        forest = RandomForestRegressor(n_trees=25, seed=2).fit(X, y)
        importances = forest.feature_importances_
        assert importances.shape == (8,)
        assert importances.sum() == pytest.approx(1.0, abs=1e-6)
        top_two = set(np.argsort(importances)[-2:])
        assert top_two == {2, 5}

    def test_oob_score_positive_for_learnable_problem(self):
        X, y = make_dataset()
        forest = RandomForestRegressor(n_trees=25, seed=3).fit(X, y)
        assert forest.oob_score_ is not None
        assert forest.oob_score_ > 0.5

    def test_nan_targets_dropped(self):
        X, y = make_dataset(n=100)
        y[::7] = np.nan
        forest = RandomForestRegressor(n_trees=10, seed=4).fit(X, y)
        assert forest.predict(X[:5]).shape == (5,)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)
        with pytest.raises(ValueError):
            RandomForestRegressor(feature_fraction=0.0)
        with pytest.raises(ValueError):
            RandomForestRegressor().fit(np.ones((1, 2)), np.ones(1))
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.ones((1, 2)))


class TestVectorizedEquivalence:
    """The vectorized hot paths must be bit-identical to their scalar oracles.

    ``_best_split`` and ``predict`` were vectorized for the million-trial
    scoring tier with the original implementations retained as references;
    these fixtures sweep randomized shapes, constant targets, and
    duplicate-value columns (the tie-breaking traps) and require exact
    float64 equality — not approx — because a checkpoint-resumed run must
    reproduce the uninterrupted one bit for bit.
    """

    @pytest.mark.parametrize("seed", range(6))
    def test_best_split_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(8, 60))
        d = int(rng.integers(2, 9))
        X = rng.random((n, d))
        # duplicate-heavy columns: quantized values force equal-value skips
        X[:, 0] = np.round(X[:, 0] * 3) / 3.0
        if d > 2:
            X[:, 1] = X[:, 1] > 0.5
        y = rng.normal(0, 1, n)
        tree = RegressionTree(min_samples_leaf=int(rng.integers(1, 4)))
        columns = np.arange(d)
        assert (tree._best_split(X, y, columns)
                == tree._best_split_reference(X, y, columns))

    def test_best_split_constant_target_and_degenerate_shapes(self):
        rng = np.random.default_rng(9)
        X = rng.random((20, 3))
        constant = np.full(20, 2.5)
        tree = RegressionTree(min_samples_leaf=2)
        columns = np.arange(3)
        assert (tree._best_split(X, constant, columns)
                == tree._best_split_reference(X, constant, columns))
        # too few samples for any valid split point
        tiny = rng.random((3, 3))
        tiny_targets = rng.normal(0, 1, 3)
        tree_big_leaf = RegressionTree(min_samples_leaf=5)
        assert (tree_big_leaf._best_split(tiny, tiny_targets, columns)
                == (None, 0.0, 0.0))
        # a single-valued column can never split
        flat = np.ones((10, 1))
        flat_targets = rng.normal(0, 1, 10)
        assert (tree._best_split(flat, flat_targets, np.array([0]))
                == tree._best_split_reference(flat, flat_targets,
                                              np.array([0])))

    @pytest.mark.parametrize("seed", range(4))
    def test_tree_predict_matches_reference(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(20, 120))
        d = int(rng.integers(2, 7))
        X = rng.random((n, d))
        X[:, -1] = np.round(X[:, -1] * 4) / 4.0
        y = 5.0 * X[:, 0] + rng.normal(0, 0.5, n)
        tree = RegressionTree(max_depth=int(rng.integers(2, 7)),
                              min_samples_leaf=int(rng.integers(1, 4)),
                              rng=rng).fit(X, y)
        queries = rng.random((64, d))
        exact = tree.predict_reference(queries)
        assert np.array_equal(tree.predict(queries), exact)
        # single-row and 1-D query shapes agree too
        assert np.array_equal(tree.predict(queries[0]),
                              tree.predict_reference(queries[0]))

    def test_tree_predict_constant_target(self):
        X = np.random.default_rng(3).random((30, 4))
        tree = RegressionTree().fit(X, np.full(30, 7.0))
        assert np.array_equal(tree.predict(X), tree.predict_reference(X))

    @pytest.mark.parametrize("seed", range(3))
    def test_forest_predict_matches_reference(self, seed):
        X, y = make_dataset(n=150, seed=seed)
        forest = RandomForestRegressor(n_trees=12, seed=seed).fit(X, y)
        queries = np.random.default_rng(seed + 50).random((80, X.shape[1]))
        assert np.array_equal(forest.predict(queries),
                              forest.predict_reference(queries))


class TestForestParameterImportance:
    def test_matches_known_sensitive_parameter(self, small_space, rng):
        encoder = ConfigEncoder(small_space)
        configs = [small_space.sample_configuration(rng) for _ in range(250)]
        X = encoder.encode_batch(configs)
        start, _ = encoder.slice_for("net.core.somaxconn")
        y = 100.0 * X[:, start] + np.random.default_rng(0).normal(0, 1.0, X.shape[0])
        importances = forest_parameter_importance(encoder, X, y, n_trees=15, seed=5)
        best = max(importances, key=importances.get)
        assert best == "net.core.somaxconn"
