"""Tests for the from-scratch random-forest regressor and its importances."""

import numpy as np
import pytest

from repro.config.encoding import ConfigEncoder
from repro.deeptune.forest import (
    RandomForestRegressor,
    RegressionTree,
    forest_parameter_importance,
)


def make_dataset(n=300, d=8, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    y = 10.0 * X[:, 2] + 4.0 * (X[:, 5] > 0.5) + rng.normal(0, 0.3, n)
    return X, y


class TestRegressionTree:
    def test_fits_step_function(self):
        rng = np.random.default_rng(1)
        X = rng.random((200, 3))
        y = np.where(X[:, 1] > 0.5, 10.0, 0.0)
        tree = RegressionTree(max_depth=3, rng=rng).fit(X, y)
        predictions = tree.predict(X)
        assert np.mean((predictions - y) ** 2) < 1.0
        assert int(np.argmax(tree.feature_importances_)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)
        tree = RegressionTree()
        with pytest.raises(RuntimeError):
            tree.predict(np.ones((1, 2)))
        with pytest.raises(ValueError):
            tree.fit(np.ones((3, 2)), np.ones(4))

    def test_constant_target_yields_leaf(self):
        X = np.random.default_rng(0).random((50, 4))
        y = np.full(50, 3.0)
        tree = RegressionTree().fit(X, y)
        assert np.allclose(tree.predict(X), 3.0)


class TestRandomForest:
    def test_predictions_track_target(self):
        X, y = make_dataset()
        forest = RandomForestRegressor(n_trees=20, seed=1).fit(X, y)
        predictions = forest.predict(X)
        correlation = np.corrcoef(predictions, y)[0, 1]
        assert correlation > 0.8

    def test_importances_identify_relevant_features(self):
        X, y = make_dataset()
        forest = RandomForestRegressor(n_trees=25, seed=2).fit(X, y)
        importances = forest.feature_importances_
        assert importances.shape == (8,)
        assert importances.sum() == pytest.approx(1.0, abs=1e-6)
        top_two = set(np.argsort(importances)[-2:])
        assert top_two == {2, 5}

    def test_oob_score_positive_for_learnable_problem(self):
        X, y = make_dataset()
        forest = RandomForestRegressor(n_trees=25, seed=3).fit(X, y)
        assert forest.oob_score_ is not None
        assert forest.oob_score_ > 0.5

    def test_nan_targets_dropped(self):
        X, y = make_dataset(n=100)
        y[::7] = np.nan
        forest = RandomForestRegressor(n_trees=10, seed=4).fit(X, y)
        assert forest.predict(X[:5]).shape == (5,)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)
        with pytest.raises(ValueError):
            RandomForestRegressor(feature_fraction=0.0)
        with pytest.raises(ValueError):
            RandomForestRegressor().fit(np.ones((1, 2)), np.ones(1))
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.ones((1, 2)))


class TestForestParameterImportance:
    def test_matches_known_sensitive_parameter(self, small_space, rng):
        encoder = ConfigEncoder(small_space)
        configs = [small_space.sample_configuration(rng) for _ in range(250)]
        X = encoder.encode_batch(configs)
        start, _ = encoder.slice_for("net.core.somaxconn")
        y = 100.0 * X[:, start] + np.random.default_rng(0).normal(0, 1.0, X.shape[0])
        importances = forest_parameter_importance(encoder, X, y, n_trees=15, seed=5)
        best = max(importances, key=importances.get)
        assert best == "net.core.somaxconn"
