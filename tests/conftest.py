"""Shared pytest fixtures.

Most tests run against a deliberately small Linux configuration space so the
suite stays fast; the full-scale spaces are only exercised by the census and
scalability tests.
"""

from __future__ import annotations

import random

import pytest

from repro.apps.registry import default_bench_tool_for, get_application
from repro.config.parameter import ParameterKind
from repro.platform.metrics import metric_for_application
from repro.platform.pipeline import BenchmarkingPipeline, VirtualClock
from repro.vm.os_model import linux_os_model, unikraft_os_model
from repro.vm.simulator import SystemSimulator


SMALL_SPACE_OPTIONS = {"extra_compile": 20, "extra_runtime": 12, "extra_boot": 4}


@pytest.fixture(scope="session")
def small_linux_model():
    """A Linux OS model with a reduced filler-parameter tail (fast to encode)."""
    return linux_os_model(version="v4.19", seed=11, **SMALL_SPACE_OPTIONS)


@pytest.fixture(scope="session")
def linux_model():
    """The experiment-scale Linux OS model used by integration tests."""
    return linux_os_model(version="v4.19", seed=1)


@pytest.fixture(scope="session")
def unikraft_model():
    return unikraft_os_model(seed=1)


@pytest.fixture
def rng():
    return random.Random(1234)


@pytest.fixture
def small_space(small_linux_model):
    return small_linux_model.space


@pytest.fixture
def default_configuration(small_linux_model):
    return small_linux_model.space.default_configuration()


def make_simulator(os_model, application_name: str, seed: int = 5) -> SystemSimulator:
    """Build a simulator for *application_name* against *os_model*."""
    application = get_application(application_name)
    bench = default_bench_tool_for(application_name)
    return SystemSimulator(os_model, application, bench, seed=seed)


def make_pipeline(os_model, application_name: str, seed: int = 5) -> BenchmarkingPipeline:
    """Build a full benchmarking pipeline for *application_name*."""
    simulator = make_simulator(os_model, application_name, seed=seed)
    metric = metric_for_application(application_name)
    return BenchmarkingPipeline(simulator, metric, clock=VirtualClock())


@pytest.fixture
def nginx_simulator(small_linux_model):
    return make_simulator(small_linux_model, "nginx")


@pytest.fixture
def nginx_pipeline(small_linux_model):
    return make_pipeline(small_linux_model, "nginx")


@pytest.fixture
def runtime_kinds():
    return [ParameterKind.RUNTIME]
