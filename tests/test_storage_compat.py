"""Backward-compat pinning across history storage format versions.

The streaming report tier must be invisible at the output layer: a campaign
stored as version-1 inline documents, version-2 raw-sidecar manifests, or
version-3 block-compressed manifests has to produce *byte-identical* report
text and JSON.  These tests generate the legacy forms by downgrading a real
version-3 campaign in place, so every format variant describes the exact
same trials.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.platform import trialstore
from repro.platform.results import (
    ResultsStore,
    load_history_document,
    open_history_view,
)

from tests.test_campaign import make_campaign


@pytest.fixture(scope="module")
def v3_dir(tmp_path_factory):
    """A complete campaign stored in the current (version 3) format."""
    from repro.platform.campaign_runner import CampaignRunner

    directory = str(tmp_path_factory.mktemp("compat-v3"))
    result = CampaignRunner(make_campaign(), directory, procs=1).run()
    assert result.ok
    return directory


def _history_names(directory):
    names = ResultsStore(directory).list_histories()
    return [name for name in names if name != "campaign"]


def _raw_payload_bytes(directory, name):
    """The uncompressed logical payload stream of a stored history."""
    store = ResultsStore(directory)
    with open(store.history_path(name)) as handle:
        document = json.load(handle)
    _, payloads_path = store.history_trial_paths(name)
    blocks = document.get("payload_blocks") or []
    end = blocks[-1]["raw_offset"] + blocks[-1]["raw_size"] if blocks else 0
    reader = trialstore.open_payload_reader(payloads_path, blocks)
    return document, reader.read_prefix(end)


def downgrade_to_v2(directory, name):
    """Rewrite one stored history as a version-2 raw-sidecar manifest."""
    store = ResultsStore(directory)
    document, raw = _raw_payload_bytes(directory, name)
    _, payloads_path = store.history_trial_paths(name)
    with open(payloads_path, "wb") as handle:
        handle.write(raw)
    document["format_version"] = 2
    document.pop("payload_format", None)
    document.pop("payload_blocks", None)
    with open(store.history_path(name), "w") as handle:
        handle.write(json.dumps(document, indent=2) + "\n")


def downgrade_to_v1(directory, name):
    """Rewrite one stored history as a version-1 inline-records document."""
    store = ResultsStore(directory)
    document = load_history_document(store.history_path(name))
    document["format_version"] = 1
    for key in ("trial_columns", "trial_payloads", "payload_format",
                "payload_blocks", "trials"):
        document.pop(key, None)
    with open(store.history_path(name), "w") as handle:
        handle.write(json.dumps(document, indent=2) + "\n")
    for sidecar in store.history_trial_paths(name):
        os.remove(sidecar)


@pytest.fixture(scope="module")
def v2_dir(v3_dir, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("compat-v2") / "campaign")
    shutil.copytree(v3_dir, directory)
    for name in _history_names(directory):
        downgrade_to_v2(directory, name)
    return directory

@pytest.fixture(scope="module")
def v1_dir(v3_dir, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("compat-v1") / "campaign")
    shutil.copytree(v3_dir, directory)
    for name in _history_names(directory):
        downgrade_to_v1(directory, name)
    return directory


class TestDocumentEquivalence:
    """Every format version materializes the identical document."""

    def test_fixtures_are_the_claimed_formats(self, v1_dir, v2_dir, v3_dir):
        store = ResultsStore(v3_dir)
        for directory, version in ((v1_dir, 1), (v2_dir, 2), (v3_dir, 3)):
            for name in _history_names(directory):
                path = os.path.join(directory, name + ".json")
                with open(path) as handle:
                    assert json.load(handle)["format_version"] == version
        # and the v2 sidecar really is raw JSONL, not a compressed copy
        name = _history_names(v2_dir)[0]
        _, payloads = ResultsStore(v2_dir).history_trial_paths(name)
        assert not trialstore.payload_is_blocked(payloads)
        _, payloads = store.history_trial_paths(name)
        assert trialstore.payload_is_blocked(payloads)

    def test_loader_is_format_blind(self, v1_dir, v2_dir, v3_dir):
        for name in _history_names(v3_dir):
            reference = load_history_document(
                os.path.join(v3_dir, name + ".json"))
            for directory in (v1_dir, v2_dir):
                document = load_history_document(
                    os.path.join(directory, name + ".json"))
                assert document["records"] == reference["records"]
                assert document["summary"] == reference["summary"]
                assert document["metadata"] == reference["metadata"]

    def test_view_matches_materializing_loader(self, v1_dir, v2_dir, v3_dir):
        for directory in (v1_dir, v2_dir, v3_dir):
            for name in _history_names(directory):
                path = os.path.join(directory, name + ".json")
                reference = load_history_document(path)
                view = open_history_view(path)
                assert len(view) == len(reference["records"])
                assert view.record_dicts() == reference["records"]
                for position, entry in enumerate(reference["records"]):
                    assert view.record_dict(position) == entry

    def test_view_columns_agree_across_formats(self, v1_dir, v3_dir):
        for name in _history_names(v3_dir):
            inline = open_history_view(os.path.join(v1_dir, name + ".json"))
            columnar = open_history_view(os.path.join(v3_dir, name + ".json"))
            mask = columnar.has_objective
            assert inline.has_objective.tolist() == mask.tolist()
            # NaN backs the no-objective rows, so compare under the mask
            assert inline.objective[mask].tolist() == \
                columnar.objective[mask].tolist()
            assert inline.cost.tolist() == columnar.cost.tolist()
            assert inline.iteration.tolist() == columnar.iteration.tolist()
            assert inline.worker.tolist() == columnar.worker.tolist()
            assert inline.crashed.tolist() == columnar.crashed.tolist()


class TestReportEquivalence:
    """Reports over any format version are byte-identical."""

    def test_report_json_is_byte_identical(self, v1_dir, v2_dir, v3_dir):
        from repro.analysis.campaign_report import campaign_report_document

        reference = json.dumps(campaign_report_document(v3_dir),
                               indent=2, sort_keys=True)
        for directory in (v1_dir, v2_dir):
            document = json.dumps(campaign_report_document(directory),
                                  indent=2, sort_keys=True)
            assert document == reference

    def test_report_text_is_byte_identical(self, v1_dir, v2_dir, v3_dir):
        from repro.analysis.campaign_report import render_campaign_report

        reference = render_campaign_report(v3_dir, max_points=8)
        for directory in (v1_dir, v2_dir):
            assert render_campaign_report(directory, max_points=8) == reference

    def test_streaming_series_matches_reference_path(self, v3_dir):
        from repro.analysis.campaign_report import (
            load_campaign,
            per_iteration_cost_series,
            per_iteration_cost_series_reference,
        )

        results = load_campaign(v3_dir)
        for algorithm in results.axis_values("algorithm"):
            streaming = per_iteration_cost_series(results, algorithm)
            reference = per_iteration_cost_series_reference(
                load_campaign(v3_dir), algorithm)
            assert streaming == reference
            assert json.dumps(streaming) == json.dumps(reference)
