"""Unit tests for configuration constraints."""

import random

import pytest

from repro.config.constraints import (
    DependsOn,
    ForbiddenCombination,
    RangeConstraint,
    RequiresValue,
    count_satisfied,
)


RNG = random.Random(3)


class TestDependsOn:
    def test_violation_when_dependency_missing(self):
        constraint = DependsOn("CONFIG_INET", "CONFIG_NET")
        violation = constraint.check({"CONFIG_INET": True, "CONFIG_NET": False})
        assert violation is not None
        assert "CONFIG_INET" in violation.message

    def test_tristate_module_counts_as_enabled(self):
        constraint = DependsOn("CONFIG_VIRTIO_NET", "CONFIG_NET")
        assert constraint.check({"CONFIG_VIRTIO_NET": "m", "CONFIG_NET": "n"}) is not None
        assert constraint.check({"CONFIG_VIRTIO_NET": "m", "CONFIG_NET": "y"}) is None

    def test_disabled_option_never_violates(self):
        constraint = DependsOn("CONFIG_INET", "CONFIG_NET")
        assert constraint.check({"CONFIG_INET": False, "CONFIG_NET": False}) is None

    def test_repair_disables_dependent_option(self):
        constraint = DependsOn("CONFIG_INET", "CONFIG_NET")
        repair = constraint.repair({"CONFIG_INET": True, "CONFIG_NET": False}, RNG)
        assert repair == {"CONFIG_INET": False}
        repair_tristate = constraint.repair({"CONFIG_INET": "y", "CONFIG_NET": "n"}, RNG)
        assert repair_tristate == {"CONFIG_INET": "n"}


class TestRequiresValue:
    def test_violation_and_repair(self):
        constraint = RequiresValue("CONFIG_NUMA", "CONFIG_NR_CPUS", allowed=(2, 4, 8))
        config = {"CONFIG_NUMA": True, "CONFIG_NR_CPUS": 1}
        assert constraint.check(config) is not None
        repair = constraint.repair(config, RNG)
        assert repair["CONFIG_NR_CPUS"] in (2, 4, 8)

    def test_satisfied_when_disabled(self):
        constraint = RequiresValue("CONFIG_NUMA", "CONFIG_NR_CPUS", allowed=(2,))
        assert constraint.check({"CONFIG_NUMA": False, "CONFIG_NR_CPUS": 1}) is None

    def test_empty_allowed_rejected(self):
        with pytest.raises(ValueError):
            RequiresValue("a", "b", allowed=())


class TestRangeConstraint:
    def test_bounds(self):
        constraint = RangeConstraint("vm.swappiness", 0, 200)
        assert constraint.check({"vm.swappiness": 100}) is None
        assert constraint.check({"vm.swappiness": 500}) is not None
        assert constraint.check({"vm.swappiness": "high"}) is not None

    def test_repair_clamps(self):
        constraint = RangeConstraint("vm.swappiness", 0, 200)
        assert constraint.repair({"vm.swappiness": 500}, RNG) == {"vm.swappiness": 200}
        assert constraint.repair({"vm.swappiness": "x"}, RNG) == {"vm.swappiness": 0}

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            RangeConstraint("x", 10, 0)


class TestForbiddenCombination:
    def test_detects_exact_combination(self):
        constraint = ForbiddenCombination({"CONFIG_KASAN": True, "CONFIG_DEBUG_PAGEALLOC": True})
        assert constraint.check({"CONFIG_KASAN": True, "CONFIG_DEBUG_PAGEALLOC": True}) is not None
        assert constraint.check({"CONFIG_KASAN": True, "CONFIG_DEBUG_PAGEALLOC": False}) is None

    def test_repair_breaks_combination(self):
        constraint = ForbiddenCombination({"CONFIG_KASAN": True, "CONFIG_DEBUG_PAGEALLOC": True})
        config = {"CONFIG_KASAN": True, "CONFIG_DEBUG_PAGEALLOC": True}
        repair = constraint.repair(config, RNG)
        assert repair
        updated = dict(config, **repair)
        assert constraint.check(updated) is None

    def test_empty_assignment_rejected(self):
        with pytest.raises(ValueError):
            ForbiddenCombination({})

    def test_reason_in_message(self):
        constraint = ForbiddenCombination({"A": True}, reason="A is broken")
        violation = constraint.check({"A": True})
        assert violation.message == "A is broken"


class TestCountSatisfied:
    def test_counts(self):
        constraints = [
            DependsOn("CONFIG_INET", "CONFIG_NET"),
            RangeConstraint("vm.swappiness", 0, 200),
        ]
        config = {"CONFIG_INET": True, "CONFIG_NET": False, "vm.swappiness": 60}
        satisfied, total = count_satisfied(constraints, config)
        assert (satisfied, total) == (1, 2)
