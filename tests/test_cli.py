"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.application == "nginx"
        assert args.algorithm == "deeptune"
        assert args.iterations == 100

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "magic"])


class TestCensus:
    def test_census_prints_table(self, capsys):
        assert main(["census", "--version", "v6.0"]) == 0
        output = capsys.readouterr().out
        assert "13328" in output
        assert "7585" in output


class TestProbe:
    def test_probe_writes_job_file(self, tmp_path, capsys):
        output = str(tmp_path / "job.yaml")
        assert main(["probe", "--output", output, "--extra-generic", "5"]) == 0
        assert os.path.exists(output)
        text = capsys.readouterr().out
        assert "job file written" in text
        from repro.config.jobfile import load_job_file
        job = load_job_file(output)
        assert len(job.space) > 50


class TestRun:
    def test_run_random_and_store_results(self, tmp_path, capsys):
        results_dir = str(tmp_path / "results")
        code = main([
            "run", "--application", "nginx", "--algorithm", "random",
            "--iterations", "6", "--seed", "3", "--results", results_dir,
            "--name", "smoke",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Search result" in output
        stored = os.path.join(results_dir, "smoke.json")
        assert os.path.exists(stored)
        with open(stored) as handle:
            document = json.load(handle)
        assert document["summary"]["trials"] == 6
        assert document["metadata"]["algorithm"] == "random"

    def test_run_from_job_file(self, tmp_path, capsys, small_space):
        from repro.config.jobfile import JobFile, dump_job_file

        job_path = str(tmp_path / "job.yaml")
        job = JobFile(name="job", os_name="linux", application="nginx",
                      bench_tool="wrk", metric="throughput", space=small_space,
                      iterations=5, favor_kinds=["runtime"], seed=1)
        dump_job_file(job, job_path)
        code = main(["run", "--job", job_path, "--algorithm", "random"])
        assert code == 0
        assert "Search result" in capsys.readouterr().out


class TestCompare:
    def test_compare_two_algorithms(self, capsys):
        code = main(["compare", "--application", "nginx", "--algorithms", "random",
                     "grid", "--iterations", "5", "--seed", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "algorithm comparison" in output
        assert "random" in output and "grid" in output
