"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.application == "nginx"
        # algorithm/iterations parse as None so an explicit flag can be told
        # apart from the default when a job file provides the setting; the
        # effective defaults live in the spec builder.
        assert args.algorithm is None
        assert args.iterations is None
        from repro.cli import _spec_from_args

        spec = _spec_from_args(args)
        assert spec.algorithm == "deeptune"
        assert spec.iterations == 100

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "magic"])

    def test_run_accepts_workers_and_batch_size(self):
        args = build_parser().parse_args(
            ["run", "--workers", "4", "--batch-size", "8"])
        assert args.workers == 4
        assert args.batch_size == 8

    def test_compare_accepts_budget_and_favor(self):
        args = build_parser().parse_args(
            ["compare", "--favor", "none", "--time-budget-s", "3600",
             "--workers", "2", "--batch-size", "2"])
        assert args.favor == "none"
        assert args.time_budget_s == 3600.0
        assert args.workers == 2

    def test_compare_rejects_unknown_favor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--favor", "everything"])

    def test_workers_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workers", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--batch-size", "0"])

    def test_iterations_must_be_positive(self):
        # zero/negative budgets used to slip through a plain type=int
        for command in ("run", "compare"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--iterations", "0"])
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--iterations", "-5"])
        assert build_parser().parse_args(["run", "--iterations", "1"]).iterations == 1

    def test_plateau_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--plateau", "0"])
        assert build_parser().parse_args(["run", "--plateau", "7"]).plateau == 7

    def test_time_budget_must_be_a_positive_float(self):
        # zero/negative/non-numeric budgets used to slip through a plain
        # type=float (and --time-budget-s -5 was accepted verbatim)
        for command in ("run", "compare"):
            for bad in ("0", "-5", "nan", "never"):
                with pytest.raises(SystemExit):
                    build_parser().parse_args([command, "--time-budget-s", bad])
        args = build_parser().parse_args(["run", "--time-budget-s", "3600.5"])
        assert args.time_budget_s == 3600.5

    def test_seed_must_be_a_non_negative_int(self):
        for command in ("run", "compare"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--seed", "-1"])
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--seed", "1.5"])
        assert build_parser().parse_args(["run", "--seed", "0"]).seed == 0
        assert build_parser().parse_args(["compare", "--seed", "11"]).seed == 11

    def test_execution_mode_choices(self):
        args = build_parser().parse_args(["run", "--execution", "async"])
        assert args.execution == "async"
        # run leaves the default unset so a job file's value can win
        assert build_parser().parse_args(["run"]).execution is None
        assert build_parser().parse_args(["compare"]).execution == "batch"
        for command in ("run", "compare"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--execution", "eager"])
        from repro.cli import _spec_from_args

        spec = _spec_from_args(build_parser().parse_args(
            ["run", "--execution", "async"]))
        assert spec.execution == "async"
        assert _spec_from_args(build_parser().parse_args(["run"])).execution == "batch"

    def test_favor_forwarded_per_os(self):
        from repro.cli import _build_wayfinder
        from repro.config.parameter import ParameterKind

        # explicit favor is honoured on unikraft too (was silently dropped)
        wf = _build_wayfinder("unikraft", "unikraft-nginx", "auto", "random",
                              "boot", 1)
        assert wf.favored_kinds == [ParameterKind.BOOT_TIME]
        # unspecified favor keeps the per-OS historical defaults
        assert _build_wayfinder("unikraft", "unikraft-nginx", "auto", "random",
                                None, 1).favored_kinds is None
        assert _build_wayfinder("linux", "nginx", "auto", "random",
                                None, 1).favored_kinds == [ParameterKind.RUNTIME]
        # "none" means explicitly unfavored on both
        assert _build_wayfinder("linux", "nginx", "auto", "random",
                                "none", 1).favored_kinds is None


class TestCensus:
    def test_census_prints_table(self, capsys):
        assert main(["census", "--version", "v6.0"]) == 0
        output = capsys.readouterr().out
        assert "13328" in output
        assert "7585" in output


class TestProbe:
    def test_probe_writes_job_file(self, tmp_path, capsys):
        output = str(tmp_path / "job.yaml")
        assert main(["probe", "--output", output, "--extra-generic", "5"]) == 0
        assert os.path.exists(output)
        text = capsys.readouterr().out
        assert "job file written" in text
        from repro.config.jobfile import load_job_file
        job = load_job_file(output)
        assert len(job.space) > 50


class TestRun:
    def test_run_random_and_store_results(self, tmp_path, capsys):
        results_dir = str(tmp_path / "results")
        code = main([
            "run", "--application", "nginx", "--algorithm", "random",
            "--iterations", "6", "--seed", "3", "--results", results_dir,
            "--name", "smoke",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Search result" in output
        stored = os.path.join(results_dir, "smoke.json")
        assert os.path.exists(stored)
        with open(stored) as handle:
            document = json.load(handle)
        assert document["summary"]["trials"] == 6
        assert document["metadata"]["algorithm"] == "random"

    def test_run_from_job_file(self, tmp_path, capsys, small_space):
        from repro.config.jobfile import JobFile, dump_job_file

        job_path = str(tmp_path / "job.yaml")
        job = JobFile(name="job", os_name="linux", application="nginx",
                      bench_tool="wrk", metric="throughput", space=small_space,
                      iterations=5, favor_kinds=["runtime"], seed=1)
        dump_job_file(job, job_path)
        code = main(["run", "--job", job_path, "--algorithm", "random"])
        assert code == 0
        assert "Search result" in capsys.readouterr().out

    def test_run_with_workers_and_batch(self, tmp_path, capsys):
        results_dir = str(tmp_path / "results")
        code = main([
            "run", "--application", "nginx", "--algorithm", "random",
            "--iterations", "8", "--seed", "3", "--workers", "4",
            "--batch-size", "4", "--results", results_dir, "--name", "fleet",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "4 workers" in output
        with open(os.path.join(results_dir, "fleet.json")) as handle:
            document = json.load(handle)
        assert document["summary"]["trials"] == 8

    def test_run_async_execution(self, tmp_path, capsys):
        results_dir = str(tmp_path / "results")
        code = main([
            "run", "--application", "nginx", "--algorithm", "random",
            "--iterations", "8", "--seed", "3", "--workers", "4",
            "--execution", "async", "--results", results_dir,
            "--name", "async-fleet",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "async execution" in output
        assert "[dispatch]" in output
        with open(os.path.join(results_dir, "async-fleet.json")) as handle:
            document = json.load(handle)
        assert document["summary"]["trials"] == 8
        assert document["metadata"]["execution"] == "async"
        utilization = document["metadata"]["worker_utilization"]
        assert len(utilization) == 4
        assert all(0.0 < value <= 1.0 for value in utilization)

    def test_job_file_algorithm_and_budget_honoured(self, tmp_path, small_space):
        from repro.cli import _spec_from_args, build_parser
        from repro.config.jobfile import JobFile, dump_job_file

        job_path = str(tmp_path / "job.yaml")
        job = JobFile(name="job", os_name="linux", application="nginx",
                      bench_tool="wrk", metric="throughput", space=small_space,
                      iterations=6, favor_kinds=["runtime"], seed=1,
                      algorithm="random", plateau_trials=4)
        dump_job_file(job, job_path)
        # without explicit flags the job file's settings win ...
        spec = _spec_from_args(build_parser().parse_args(["run", "--job", job_path]))
        assert spec.algorithm == "random"
        assert spec.iterations == 6
        assert spec.plateau_trials == 4
        # ... and explicit flags override them
        spec = _spec_from_args(build_parser().parse_args(
            ["run", "--job", job_path, "--algorithm", "grid",
             "--iterations", "9", "--plateau", "7"]))
        assert spec.algorithm == "grid"
        assert spec.iterations == 9
        assert spec.plateau_trials == 7

    def test_job_file_workers_used_and_overridable(self, tmp_path, capsys, small_space):
        from repro.config.jobfile import JobFile, dump_job_file

        job_path = str(tmp_path / "job.yaml")
        job = JobFile(name="job", os_name="linux", application="nginx",
                      bench_tool="wrk", metric="throughput", space=small_space,
                      iterations=6, favor_kinds=["runtime"], seed=1,
                      workers=2, batch_size=2)
        dump_job_file(job, job_path)
        assert main(["run", "--job", job_path, "--algorithm", "random"]) == 0
        assert "2 workers" in capsys.readouterr().out
        assert main(["run", "--job", job_path, "--algorithm", "random",
                     "--workers", "3"]) == 0
        assert "3 workers" in capsys.readouterr().out


class TestProgressOutput:
    def test_run_prints_lifecycle_progress(self, capsys):
        assert main(["run", "--application", "nginx", "--algorithm", "random",
                     "--iterations", "5", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        # the progress lines come from the session observer API
        assert "[batch" in output
        assert "new incumbent" in output
        assert "stopped by" in output


class TestCheckpointResumeCli:
    def test_run_checkpoint_then_resume(self, tmp_path, capsys):
        results_dir = str(tmp_path / "results")
        assert main([
            "run", "--application", "nginx", "--algorithm", "random",
            "--iterations", "5", "--seed", "3", "--results", results_dir,
            "--name", "ck", "--checkpoint-every", "1",
        ]) == 0
        output = capsys.readouterr().out
        assert "checkpoint saved to" in output
        checkpoint = os.path.join(results_dir, "ck.checkpoint.json")
        assert os.path.exists(checkpoint)

        # resuming the finished run is a no-op that still reports the result
        assert main(["run", "--resume", "ck", "--results", results_dir]) == 0
        output = capsys.readouterr().out
        assert "Resuming" in output
        assert "Search result" in output

        # a checkpoint file path works without --results
        assert main(["run", "--resume", checkpoint]) == 0
        assert "Resuming" in capsys.readouterr().out

    def test_resume_extends_budget_and_guards_state_flags(self, tmp_path, capsys):
        results_dir = str(tmp_path / "results")
        assert main([
            "run", "--application", "nginx", "--algorithm", "random",
            "--iterations", "4", "--seed", "3", "--results", results_dir,
            "--name", "ck", "--checkpoint-every", "1",
        ]) == 0
        capsys.readouterr()
        # explicit budget flags extend the resumed run past the stored budget
        assert main(["run", "--resume", "ck", "--results", results_dir,
                     "--iterations", "7"]) == 0
        output = capsys.readouterr().out
        assert "iterations         7" in output
        # flags the restored state depends on are rejected, not ignored
        assert main(["run", "--resume", "ck", "--results", results_dir,
                     "--workers", "2"]) == 2
        assert "cannot be changed" in capsys.readouterr().err
        assert main(["run", "--resume", "ck", "--results", results_dir,
                     "--execution", "async"]) == 2
        assert "cannot be changed" in capsys.readouterr().err

    def test_resume_requires_locatable_checkpoint(self, tmp_path, capsys):
        assert main(["run", "--resume", "nope"]) == 2
        assert "--resume" in capsys.readouterr().err
        # a named checkpoint missing from the results directory exits
        # cleanly too, instead of dying with a traceback
        assert main(["run", "--resume", "nope",
                     "--results", str(tmp_path)]) == 2
        assert "no checkpoint" in capsys.readouterr().err

    def test_checkpoint_requires_results(self, capsys):
        assert main(["run", "--iterations", "2", "--checkpoint-every", "1"]) == 2
        assert "--results" in capsys.readouterr().err


class TestCampaignCLI:
    def _write_campaign(self, tmp_path, name="cli-grid"):
        from repro.config.jobfile import dump_campaign_file
        from repro.core.campaign import CampaignSpec

        from tests.conftest import SMALL_SPACE_OPTIONS

        campaign = CampaignSpec(
            name=name, applications=["nginx"], algorithms=["random", "grid"],
            seeds=[2], base={"metric": "auto", "iterations": 4,
                             "space_options": SMALL_SPACE_OPTIONS})
        path = str(tmp_path / (name + ".yaml"))
        dump_campaign_file(campaign, path)
        return campaign, path

    def test_parser_accepts_run_and_report(self):
        args = build_parser().parse_args(
            ["campaign", "run", "--spec", "c.yaml", "--results", "out",
             "--procs", "2", "--resume", "--max-experiments", "3"])
        assert args.campaign_command == "run"
        assert args.procs == 2 and args.resume and args.max_experiments == 3
        args = build_parser().parse_args(
            ["campaign", "report", "--results", "out", "--max-points", "5"])
        assert args.campaign_command == "report"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "run", "--procs", "0",
                                       "--results", "out"])

    def test_campaign_run_counts_must_be_positive_ints(self):
        # zero/negative/fractional counts used to be rejected only for
        # --procs; all three count flags share the _positive_int validator
        for flag in ("--procs", "--checkpoint-every", "--max-experiments",
                     "--max-attempts"):
            for bad in ("0", "-2", "1.5", "many"):
                with pytest.raises(SystemExit):
                    build_parser().parse_args(
                        ["campaign", "run", "--results", "out", flag, bad])
        args = build_parser().parse_args(
            ["campaign", "run", "--results", "out", "--procs", "3",
             "--checkpoint-every", "2", "--max-experiments", "1"])
        assert (args.procs, args.checkpoint_every, args.max_experiments) == \
            (3, 2, 1)

    def test_campaign_chaos_flags(self):
        args = build_parser().parse_args(
            ["campaign", "run", "--results", "out", "--chaos-seed", "7",
             "--chaos-kill-rate", "0.5", "--chaos-torn-write-rate", "0.25",
             "--chaos-startup-failure-rate", "1.0", "--lease-s", "0.5"])
        assert args.chaos_seed == 7
        assert args.chaos_kill_rate == 0.5
        assert args.chaos_torn_write_rate == 0.25
        assert args.chaos_startup_failure_rate == 1.0
        assert args.lease_s == 0.5
        # rates are [0, 1] floats, the seed a non-negative int, the lease
        # a positive float
        for flag in ("--chaos-kill-rate", "--chaos-torn-write-rate",
                     "--chaos-startup-failure-rate"):
            for bad in ("-0.1", "1.5", "nan", "often"):
                with pytest.raises(SystemExit):
                    build_parser().parse_args(
                        ["campaign", "run", "--results", "out", flag, bad])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "run", "--results", "out",
                                       "--chaos-seed", "-1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "run", "--results", "out",
                                       "--lease-s", "0"])

    def test_campaign_chaos_run_matches_clean_run(self, tmp_path, capsys):
        """The headline invariant, driven through the CLI flags."""
        _, spec_path = self._write_campaign(tmp_path)
        clean_dir = str(tmp_path / "clean")
        chaos_dir = str(tmp_path / "chaos")
        assert main(["campaign", "run", "--spec", spec_path,
                     "--results", clean_dir]) == 0
        assert main(["campaign", "run", "--spec", spec_path,
                     "--results", chaos_dir, "--chaos-seed", "9",
                     "--chaos-kill-rate", "0.3", "--lease-s", "0.2"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "--results", clean_dir]) == 0
        clean_report = capsys.readouterr().out
        assert main(["campaign", "report", "--results", chaos_dir]) == 0
        assert capsys.readouterr().out == clean_report

    def test_campaign_quarantine_surfaces_in_output(self, tmp_path, capsys):
        _, spec_path = self._write_campaign(tmp_path)
        results_dir = str(tmp_path / "out")
        # every startup fails: both experiments exhaust their retries
        assert main(["campaign", "run", "--spec", spec_path,
                     "--results", results_dir, "--max-attempts", "2",
                     "--chaos-seed", "0",
                     "--chaos-startup-failure-rate", "1.0"]) == 1
        captured = capsys.readouterr()
        assert "0 complete, 2 failed (2 quarantined), 0 pending" in captured.out
        assert "QUARANTINED" in captured.out
        assert "failed-permanent after 2 attempts" in captured.err
        assert main(["campaign", "report", "--results", results_dir]) == 0
        report = capsys.readouterr().out
        assert "Failed experiments (failed-permanent = quarantined)" in report
        assert "failed-permanent" in report

    def test_campaign_run_then_report(self, tmp_path, capsys):
        campaign, spec_path = self._write_campaign(tmp_path)
        results_dir = str(tmp_path / "out")
        assert main(["campaign", "run", "--spec", spec_path,
                     "--results", results_dir, "--procs", "2"]) == 0
        output = capsys.readouterr().out
        assert "2 experiments" in output
        assert "2 complete, 0 failed, 0 pending" in output
        for spec in campaign.expand():
            assert os.path.exists(os.path.join(results_dir,
                                               spec.name + ".json"))

        assert main(["campaign", "report", "--results", results_dir]) == 0
        report = capsys.readouterr().out
        assert "mean best objective per application" in report
        assert "per-iteration cost (random)" in report

    def test_campaign_resume_via_cli(self, tmp_path, capsys):
        _, spec_path = self._write_campaign(tmp_path)
        results_dir = str(tmp_path / "out")
        assert main(["campaign", "run", "--spec", spec_path,
                     "--results", results_dir, "--max-experiments", "1"]) == 0
        assert "1 complete, 0 failed, 1 pending" in capsys.readouterr().out
        # the manifest supplies the campaign: no --spec needed on resume
        assert main(["campaign", "run", "--results", results_dir,
                     "--resume"]) == 0
        assert "2 complete, 0 failed, 0 pending" in capsys.readouterr().out

    def test_campaign_resume_keeps_or_overrides_stored_cadence(self, tmp_path,
                                                               capsys):
        from repro.platform.campaign_runner import load_manifest

        _, spec_path = self._write_campaign(tmp_path)
        results_dir = str(tmp_path / "out")
        assert main(["campaign", "run", "--spec", spec_path,
                     "--results", results_dir, "--checkpoint-every", "3",
                     "--max-experiments", "1"]) == 0
        # resuming without the flag keeps the stored cadence...
        assert main(["campaign", "run", "--results", results_dir, "--resume",
                     "--max-experiments", "1"]) == 0
        assert load_manifest(results_dir)["checkpoint_every"] == 3
        # ...and an explicit flag overrides it (even with --spec repeated)
        assert main(["campaign", "run", "--spec", spec_path,
                     "--results", results_dir, "--resume",
                     "--checkpoint-every", "2"]) == 0
        assert load_manifest(results_dir)["checkpoint_every"] == 2

    def test_campaign_resume_rejects_mismatched_spec(self, tmp_path, capsys):
        _, spec_path = self._write_campaign(tmp_path)
        results_dir = str(tmp_path / "out")
        assert main(["campaign", "run", "--spec", spec_path,
                     "--results", results_dir, "--max-experiments", "1"]) == 0
        _, other_path = self._write_campaign(tmp_path, name="other-grid")
        capsys.readouterr()
        assert main(["campaign", "run", "--spec", other_path,
                     "--results", results_dir, "--resume"]) == 2
        assert "does not match" in capsys.readouterr().err

    def test_campaign_run_requires_spec_or_manifest(self, tmp_path, capsys):
        results_dir = str(tmp_path / "missing")
        assert main(["campaign", "run", "--results", results_dir]) == 2
        assert "--spec" in capsys.readouterr().err
        assert main(["campaign", "run", "--results", results_dir,
                     "--resume"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_campaign_run_refuses_to_clobber(self, tmp_path, capsys):
        _, spec_path = self._write_campaign(tmp_path)
        results_dir = str(tmp_path / "out")
        assert main(["campaign", "run", "--spec", spec_path,
                     "--results", results_dir, "--max-experiments", "1"]) == 0
        capsys.readouterr()
        assert main(["campaign", "run", "--spec", spec_path,
                     "--results", results_dir]) == 2
        assert "resume" in capsys.readouterr().err

    def test_campaign_report_needs_a_campaign_directory(self, tmp_path, capsys):
        assert main(["campaign", "report", "--results",
                     str(tmp_path / "nope")]) == 2
        assert "no campaign directory" in capsys.readouterr().err
        # a directory without a manifest is reported, not a traceback
        assert main(["campaign", "report", "--results", str(tmp_path)]) == 2
        assert "cannot report" in capsys.readouterr().err

    def test_campaign_report_json_is_the_document(self, tmp_path, capsys):
        from repro.analysis.campaign_report import campaign_report_document

        _, spec_path = self._write_campaign(tmp_path)
        results_dir = str(tmp_path / "out")
        assert main(["campaign", "run", "--spec", spec_path,
                     "--results", results_dir]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "--results", results_dir,
                     "--json"]) == 0
        output = capsys.readouterr().out
        document = json.loads(output)
        assert document == campaign_report_document(results_dir)
        # canonical serialization: the exact bytes the service's /report
        # endpoint emits, so the two can be diffed in CI
        assert output == json.dumps(document, indent=2, sort_keys=True) + "\n"


class TestFlagValidation:
    """Count/duration flags all route through the shared validators."""

    def test_probe_counts_validated(self):
        # --scale-factor/--extra-generic used to be plain type=int
        for bad in ("0", "-3", "1.5", "lots"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["probe", "--scale-factor", bad])
        for bad in ("-1", "1.5", "lots"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["probe", "--extra-generic", bad])
        args = build_parser().parse_args(
            ["probe", "--scale-factor", "3", "--extra-generic", "0"])
        assert args.scale_factor == 3 and args.extra_generic == 0

    def test_run_checkpoint_cadence_validated(self):
        for bad in ("0", "-1", "1.5", "often"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["run", "--checkpoint-every", bad])
        args = build_parser().parse_args(["run", "--checkpoint-every", "4"])
        assert args.checkpoint_every == 4

    def test_campaign_run_checkpoint_and_lease_validated(self):
        for bad in ("0", "-1", "1.5", "often"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["campaign", "run", "--results", "out",
                     "--checkpoint-every", bad])
        for bad in ("0", "-0.5", "nan", "soon"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["campaign", "run", "--results", "out", "--lease-s", bad])
        args = build_parser().parse_args(
            ["campaign", "run", "--results", "out", "--checkpoint-every",
             "2", "--lease-s", "0.25"])
        assert args.checkpoint_every == 2 and args.lease_s == 0.25

    def test_report_max_points_validated(self):
        for bad in ("0", "-2", "2.5", "some"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["campaign", "report", "--results", "out",
                     "--max-points", bad])
        args = build_parser().parse_args(
            ["campaign", "report", "--results", "out", "--max-points", "5"])
        assert args.max_points == 5 and args.json is False
        assert build_parser().parse_args(
            ["campaign", "report", "--results", "out", "--json"]).json


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--results", "root"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1" and args.port == 8080
        assert args.workers == 2 and args.checkpoint_every == 1
        assert args.lease_s is None and args.max_attempts is None

    def test_serve_requires_results(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_flags_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--results", "r",
                                       "--port", "-1"])
        for flag in ("--workers", "--checkpoint-every", "--max-attempts"):
            for bad in ("0", "-2", "1.5"):
                with pytest.raises(SystemExit):
                    build_parser().parse_args(["serve", "--results", "r",
                                               flag, bad])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--results", "r",
                                       "--lease-s", "0"])
        # port 0 is the ephemeral-port request, so it is valid
        args = build_parser().parse_args(
            ["serve", "--results", "r", "--port", "0", "--workers", "4",
             "--lease-s", "2.5"])
        assert args.port == 0 and args.workers == 4 and args.lease_s == 2.5


class TestCompare:
    def test_compare_two_algorithms(self, capsys):
        code = main(["compare", "--application", "nginx", "--algorithms", "random",
                     "grid", "--iterations", "5", "--seed", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "algorithm comparison" in output
        assert "random" in output and "grid" in output

    def test_compare_honours_favor_and_time_budget(self, capsys):
        code = main(["compare", "--application", "nginx", "--algorithms", "random",
                     "--favor", "none", "--iterations", "50",
                     "--time-budget-s", "2000", "--seed", "2"])
        assert code == 0
        assert "algorithm comparison" in capsys.readouterr().out

    def test_compare_with_worker_fleet(self, capsys):
        code = main(["compare", "--application", "nginx", "--algorithms", "random",
                     "grid", "--iterations", "6", "--seed", "2",
                     "--workers", "2", "--batch-size", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "random" in output and "grid" in output
