"""Unit tests for the configuration encoder."""

import numpy as np
import pytest

from repro.config.encoding import ConfigEncoder


@pytest.fixture
def encoder(small_space):
    return ConfigEncoder(small_space)


class TestGeometry:
    def test_width_is_sum_of_parameter_widths(self, encoder, small_space):
        assert encoder.width == sum(p.encoding_width for p in small_space.parameters())

    def test_slices_are_contiguous_and_cover_width(self, encoder, small_space):
        offset = 0
        for parameter in small_space.parameters():
            start, stop = encoder.slice_for(parameter.name)
            assert start == offset
            assert stop - start == parameter.encoding_width
            offset = stop
        assert offset == encoder.width

    def test_parameter_for_column(self, encoder, small_space):
        name = small_space.parameter_names()[0]
        start, _ = encoder.slice_for(name)
        assert encoder.parameter_for_column(start).name == name
        with pytest.raises(IndexError):
            encoder.parameter_for_column(encoder.width)

    def test_column_labels_cover_width(self, encoder):
        assert len(encoder.column_labels()) == encoder.width


class TestEncodeDecode:
    def test_encode_default_within_unit_range(self, encoder, default_configuration):
        vector = encoder.encode(default_configuration)
        assert vector.shape == (encoder.width,)
        assert np.all(vector >= 0.0) and np.all(vector <= 1.0)

    def test_encode_batch_shape(self, encoder, small_space, rng):
        configs = [small_space.sample_configuration(rng) for _ in range(5)]
        matrix = encoder.encode_batch(configs)
        assert matrix.shape == (5, encoder.width)

    def test_encode_empty_batch(self, encoder):
        assert encoder.encode_batch([]).shape == (0, encoder.width)

    def test_decode_roundtrips_categoricals_and_bools(self, encoder, small_space, rng):
        config = small_space.sample_configuration(rng)
        decoded = encoder.decode(encoder.encode(config))
        for parameter in small_space.parameters():
            if parameter.is_categorical:
                assert decoded[parameter.name] == config[parameter.name]

    def test_decode_wrong_shape_rejected(self, encoder):
        with pytest.raises(ValueError):
            encoder.decode(np.zeros(encoder.width + 1))

    def test_distance_zero_for_identical(self, encoder, default_configuration):
        assert encoder.distance(default_configuration, default_configuration) == 0.0

    def test_distance_positive_for_different(self, encoder, small_space, rng):
        default = small_space.default_configuration()
        other = small_space.mutate_configuration(default, rng, mutation_rate=0.5)
        assert encoder.distance(default, other) > 0.0


class TestNormalization:
    def test_normalize_identity_before_fit(self, encoder, default_configuration):
        vector = encoder.encode(default_configuration).reshape(1, -1)
        assert np.allclose(encoder.normalize(vector), vector)

    def test_fit_and_normalize(self, encoder, small_space, rng):
        configs = [small_space.sample_configuration(rng) for _ in range(64)]
        matrix = encoder.encode_batch(configs)
        encoder.fit_normalization(matrix)
        normalized = encoder.normalize(matrix)
        stds = normalized.std(axis=0)
        varying = matrix.std(axis=0) > 1e-12
        assert np.allclose(normalized.mean(axis=0)[varying], 0.0, atol=1e-9)
        assert np.allclose(stds[varying], 1.0, atol=1e-9)

    def test_fit_rejects_empty_or_wrong_shape(self, encoder):
        with pytest.raises(ValueError):
            encoder.fit_normalization(np.empty((0, encoder.width)))
        with pytest.raises(ValueError):
            encoder.fit_normalization(np.zeros((3, encoder.width + 2)))


class TestDissimilarity:
    def test_unknown_history_gives_max_dissimilarity(self, encoder, default_configuration):
        vector = encoder.encode(default_configuration)
        assert encoder.dissimilarity(vector, np.empty((0, encoder.width))) == 1.0

    def test_identical_point_gives_zero(self, encoder, default_configuration):
        vector = encoder.encode(default_configuration)
        assert encoder.dissimilarity(vector, vector.reshape(1, -1)) == pytest.approx(0.0)

    def test_dissimilarity_increases_with_distance(self, encoder, small_space, rng):
        default = small_space.default_configuration()
        near = small_space.mutate_configuration(default, rng, mutation_rate=0.02)
        far = small_space.sample_configuration(rng)
        base = encoder.encode(default).reshape(1, -1)
        assert encoder.dissimilarity(encoder.encode(near), base) <= \
            encoder.dissimilarity(encoder.encode(far), base) + 1e-9
