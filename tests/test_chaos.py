"""Chaos tests: injected faults never change what a campaign computes.

The fabric's headline invariant: because every experiment is a
deterministic function of its spec and checkpoints restore bit-exactly,
*any* schedule of injected worker kills, torn checkpoint writes, and
transient startup failures must leave the final per-experiment records,
summaries, and ``campaign report`` tables byte-identical to the fault-free
run — at any process count.  These tests pin that invariant over every
registered algorithm and both execution modes, plus the individual fault
paths: stale-lease reclaim after a ``kill -9``-style death, torn-checkpoint
fallback, startup-failure retry, and quarantine after exhausted retries.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.campaign import CampaignSpec
from repro.platform.campaign_runner import (
    STATUS_COMPLETE,
    STATUS_FAILED_PERMANENT,
    STATUS_LEASED,
    CampaignRunner,
    load_manifest,
)
from repro.platform.faults import (
    FaultInjector,
    RetryPolicy,
    TransientStartupError,
    WorkerKilled,
    stable_hash,
    validate_chaos,
)
from repro.search.registry import available_algorithms

from tests.conftest import SMALL_SPACE_OPTIONS

#: fast backoff so chaos tests spend their time computing, not sleeping;
#: generous attempts so injected startup failures never quarantine.
FAST_RETRY = RetryPolicy(max_attempts=10, base_delay_s=0.001,
                         max_delay_s=0.01, seed=1)

#: the fault mix of the headline invariant runs.
CHAOS = {"seed": 7, "kill_rate": 0.25, "torn_write_rate": 0.1,
         "startup_failure_rate": 0.1}


def full_grid_campaign(chaos=None):
    """Every registered algorithm x both execution modes, one seed."""
    return CampaignSpec(
        name="chaos", applications=["nginx"],
        algorithms=sorted(available_algorithms()), seeds=[3],
        executions=["batch", "async"],
        base={"metric": "auto", "iterations": 4,
              "space_options": SMALL_SPACE_OPTIONS},
        overrides=[{"match": {"algorithm": "bayesian"},
                    "set": {"algorithm_options": {"initial_random": 2,
                                                  "candidate_pool_size": 8}}}],
        chaos=chaos)


def tiny_campaign(name, chaos=None, applications=("nginx",)):
    return CampaignSpec(
        name=name, applications=list(applications), algorithms=["random"],
        seeds=[3], base={"metric": "auto", "iterations": 4,
                         "space_options": SMALL_SPACE_OPTIONS},
        chaos=chaos)


def history_bytes(directory, campaign):
    contents = {}
    for spec in campaign.expand():
        with open(os.path.join(directory, spec.name + ".json"), "rb") as handle:
            contents[spec.name] = handle.read()
    return contents


def render_report(directory):
    from repro.analysis.campaign_report import render_campaign_report

    return render_campaign_report(directory)


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The fault-free full-grid run every chaos schedule must reproduce."""
    directory = str(tmp_path_factory.mktemp("chaos-reference"))
    campaign = full_grid_campaign()
    result = CampaignRunner(campaign, directory, procs=1).run()
    assert result.ok
    return {"directory": directory, "campaign": campaign,
            "histories": history_bytes(directory, campaign),
            "report": render_report(directory)}


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5, jitter=0.0)
        delays = [policy.delay_s("x", attempt) for attempt in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_per_name_and_attempt(self):
        policy = RetryPolicy(jitter=0.5, seed=3)
        assert policy.delay_s("a", 1) == policy.delay_s("a", 1)
        assert policy.delay_s("a", 1) != policy.delay_s("b", 1)
        assert policy.delay_s("a", 1) != policy.delay_s("a", 2)
        # a different seed reshuffles the jitter
        assert policy.delay_s("a", 1) != RetryPolicy(jitter=0.5,
                                                     seed=4).delay_s("a", 1)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=1.0, jitter=0.25)
        for attempt in range(1, 20):
            assert 0.75 <= policy.delay_s("x", attempt) <= 1.25

    def test_exhausted_and_roundtrip(self):
        policy = RetryPolicy(max_attempts=2)
        assert not policy.exhausted(1)
        assert policy.exhausted(2)
        assert RetryPolicy.from_dict(policy.to_dict()).to_dict() == \
            policy.to_dict()
        with pytest.raises(ValueError, match="unknown retry"):
            RetryPolicy.from_dict({"bogus": 1})

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError, match="attempt numbers"):
            RetryPolicy().delay_s("x", 0)


class TestFaultInjector:
    def test_decision_stream_is_seeded_per_incarnation(self):
        first = FaultInjector(seed=5, kill_rate=0.5)
        again = FaultInjector(seed=5, kill_rate=0.5)
        assert [first._rng.random() for _ in range(8)] == \
            [again._rng.random() for _ in range(8)]
        respawn = FaultInjector(seed=5, kill_rate=0.5, incarnation=1)
        assert [respawn._rng.random() for _ in range(8)] != \
            [FaultInjector(seed=5, kill_rate=0.5)._rng.random()
             for _ in range(8)]

    def test_soft_kill_raises_base_exception(self):
        injector = FaultInjector(kill_rate=1.0)
        with pytest.raises(WorkerKilled):
            injector.maybe_kill()
        assert not isinstance(WorkerKilled("x"), Exception)

    def test_startup_failure_is_retryable(self):
        injector = FaultInjector(startup_failure_rate=1.0)
        with pytest.raises(TransientStartupError):
            injector.maybe_fail_startup("exp")

    def test_tear_truncates(self):
        injector = FaultInjector(torn_write_rate=1.0)
        text = json.dumps({"kind": "checkpoint", "records": list(range(50))})
        torn = injector.tear(text)
        assert torn is not None and len(torn) < len(text)
        assert text.startswith(torn)
        assert FaultInjector(torn_write_rate=0.0).tear(text) is None

    def test_from_config_and_validation(self):
        assert FaultInjector.from_config(None) is None
        injector = FaultInjector.from_config({"seed": 2, "kill_rate": 0.5},
                                             incarnation=3)
        assert injector.kill_rate == 0.5 and injector.incarnation == 3
        with pytest.raises(ValueError, match="unknown chaos"):
            validate_chaos({"kill_ratio": 0.5})
        with pytest.raises(ValueError, match="kill_rate"):
            validate_chaos({"kill_rate": 1.5})
        assert validate_chaos(None) is None

    def test_stable_hash_agrees_across_calls(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)
        assert stable_hash("a", 1) != stable_hash("a", 2)


class TestChaosInvariant:
    """The headline: faults never change the bytes a campaign produces."""

    @pytest.mark.parametrize("procs", [1, 2])
    def test_faulty_run_matches_fault_free_run(self, procs, tmp_path,
                                               reference):
        campaign = full_grid_campaign(chaos=CHAOS)
        result = CampaignRunner(campaign, str(tmp_path), procs=procs,
                                lease_s=0.25, retry=FAST_RETRY).run()
        assert result.ok
        # the chaos schedule actually fired: experiments were claimed more
        # than once (kills/tears) and the campaign still converged
        manifest = load_manifest(str(tmp_path))
        assert sum(e["claims"] for e in manifest["experiments"]) > \
            len(manifest["experiments"])
        assert history_bytes(str(tmp_path), campaign) == \
            reference["histories"]
        assert render_report(str(tmp_path)) == reference["report"]

    def test_chaos_block_travels_through_spec_serialization(self):
        campaign = full_grid_campaign(chaos=CHAOS)
        rebuilt = CampaignSpec.from_dict(campaign.to_dict())
        assert rebuilt.chaos == validate_chaos(CHAOS)
        assert full_grid_campaign().to_dict()["chaos"] is None


class TestLeaseReclaim:
    def test_stale_lease_honored_until_deadline_then_reclaimed(self, tmp_path):
        campaign = tiny_campaign("lease")
        runner = CampaignRunner(campaign, str(tmp_path), lease_s=0.2)
        # materialize the manifest without running anything, then forge the
        # lease a kill -9'd worker would leave behind: no process will ever
        # renew or complete it
        runner.run(max_experiments=0)
        manifest = load_manifest(str(tmp_path))
        entry = manifest["experiments"][0]
        deadline = time.time() + 0.4
        entry.update(status=STATUS_LEASED, claims=1,
                     lease={"worker": 99, "token": "99:1",
                            "deadline_s": deadline})
        with open(os.path.join(str(tmp_path), "campaign.json"), "w") as handle:
            json.dump(manifest, handle)
        result = CampaignRunner.open(str(tmp_path), lease_s=0.2).run(
            resume=True)
        # the survivor waited out the lease, reclaimed, and completed it —
        # no manual intervention, and the dead worker's claim is recorded
        assert time.time() >= deadline
        assert result.ok
        stored = load_manifest(str(tmp_path))
        assert stored["experiments"][0]["claims"] == 2
        assert stored["experiments"][0]["lease"] is None
        assert stored["state"] == "complete"

    def test_hard_killed_workers_are_respawned_until_done(self, tmp_path):
        """Real subprocess workers die via os._exit(137) and are replaced."""
        campaign = tiny_campaign("kill9", applications=["nginx", "redis"],
                                 chaos={"seed": 11, "kill_rate": 0.6})
        clean_dir = str(tmp_path / "clean")
        chaos_dir = str(tmp_path / "chaos")
        clean = tiny_campaign("kill9", applications=["nginx", "redis"])
        assert CampaignRunner(clean, clean_dir).run().ok
        result = CampaignRunner(campaign, chaos_dir, procs=2, lease_s=0.25,
                                retry=FAST_RETRY).run()
        assert result.ok
        assert history_bytes(chaos_dir, clean) == \
            history_bytes(clean_dir, clean)


class TestTornWrites:
    def test_torn_checkpoints_fall_back_and_results_match(self, tmp_path):
        clean_dir = str(tmp_path / "clean")
        chaos_dir = str(tmp_path / "chaos")
        clean = tiny_campaign("torn")
        assert CampaignRunner(clean, clean_dir).run().ok
        campaign = tiny_campaign(
            "torn", chaos={"seed": 3, "torn_write_rate": 0.6})
        result = CampaignRunner(campaign, chaos_dir, lease_s=0.2,
                                retry=FAST_RETRY).run()
        assert result.ok
        manifest = load_manifest(chaos_dir)
        assert manifest["experiments"][0]["claims"] > 1  # tears killed workers
        assert history_bytes(chaos_dir, clean) == \
            history_bytes(clean_dir, clean)


class TestStartupFailures:
    def test_transient_startup_failures_are_retried(self, tmp_path):
        clean_dir = str(tmp_path / "clean")
        chaos_dir = str(tmp_path / "chaos")
        clean = tiny_campaign("startup")
        assert CampaignRunner(clean, clean_dir).run().ok
        # seed 4's first incarnation-0 roll is < 0.7, so the very first
        # claim deterministically hits an injected startup failure
        campaign = tiny_campaign(
            "startup", chaos={"seed": 4, "startup_failure_rate": 0.7})
        result = CampaignRunner(campaign, chaos_dir, lease_s=0.2,
                                retry=FAST_RETRY).run()
        assert result.ok
        manifest = load_manifest(chaos_dir)
        assert manifest["experiments"][0]["attempts"] > 0
        assert history_bytes(chaos_dir, clean) == \
            history_bytes(clean_dir, clean)

    def test_permanent_failure_is_quarantined(self, tmp_path):
        campaign = tiny_campaign(
            "doomed", chaos={"seed": 0, "startup_failure_rate": 1.0})
        retry = RetryPolicy(max_attempts=3, base_delay_s=0.001,
                            max_delay_s=0.01)
        result = CampaignRunner(campaign, str(tmp_path), lease_s=0.2,
                                retry=retry).run()
        assert not result.ok
        (entry,) = result.quarantined
        assert entry["status"] == STATUS_FAILED_PERMANENT
        assert entry["attempts"] == 3
        assert "injected startup failure" in entry["error"]


class TestElasticFleet:
    def test_resume_with_different_procs_matches_reference(self, tmp_path,
                                                           reference):
        campaign = full_grid_campaign()
        directory = str(tmp_path)
        partial = CampaignRunner(campaign, directory, procs=1).run(
            max_experiments=3)
        assert len(partial.completed) == 3
        result = CampaignRunner.open(directory, procs=3).run(resume=True)
        assert result.ok
        assert history_bytes(directory, campaign) == reference["histories"]
        assert render_report(directory) == reference["report"]
        # all experiments complete and the completion transition committed
        manifest = load_manifest(directory)
        assert manifest["state"] == "complete"
        assert all(e["status"] == STATUS_COMPLETE
                   for e in manifest["experiments"])
