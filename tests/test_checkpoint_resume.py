"""Checkpoint → resume determinism and the session lifecycle engine.

The hard acceptance bar of the checkpoint feature: a run checkpointed at
trial k and resumed must reproduce the uninterrupted run *trial for trial* —
same proposals, same RNG consumption, same timestamps, same incumbent
trajectory — for every registered algorithm and any worker/batch shape.  The
tests run each algorithm once with every-batch checkpointing (archiving each
checkpoint file as it is written), then resume from several interruption
points and assert record-level equality against the uninterrupted history.
"""

from __future__ import annotations

import shutil

import pytest

from repro.core.spec import ExperimentSpec
from repro.core.wayfinder import Wayfinder
from repro.platform.lifecycle import (
    CallbackObserver,
    IncumbentPlateau,
    IterationBudget,
    SessionObserver,
    TimeBudget,
)
from repro.platform.results import ResultsStore, load_checkpoint_file

from tests.conftest import SMALL_SPACE_OPTIONS

#: per-algorithm options keeping the model-guided phases cheap but active
#: (mirrors tests/test_batch_execution.py).
ALGO_OPTIONS = {
    "random": {},
    "grid": {},
    "bayesian": {"initial_random": 3, "candidate_pool_size": 16},
    "unicorn": {"candidate_pool_size": 8, "top_k": 4},
    "deeptune": {"warmup_iterations": 3, "candidate_pool_size": 32,
                 "training_steps_per_iteration": 4, "hidden_dims": [24, 12],
                 "n_centroids": 8},
}


def _spec(algorithm: str, workers: int, iterations: int) -> ExperimentSpec:
    return ExperimentSpec(
        application="nginx", metric="throughput", algorithm=algorithm,
        favor="runtime", seed=7, iterations=iterations, workers=workers,
        batch_size=workers, space_options=SMALL_SPACE_OPTIONS,
        algorithm_options=ALGO_OPTIONS[algorithm],
        name="ckpt-{}-w{}".format(algorithm, workers))


def _trial_tuple(record):
    return (record.index, record.configuration, record.objective,
            record.crashed, record.duration_s, record.started_at_s,
            record.build_skipped, record.worker)


def _full_run_with_checkpoints(spec, tmp_path):
    """Run to completion, archiving the checkpoint written at every batch.

    Returns (history tuples, [(trials_done, archived_path), ...]).
    """
    wayfinder = Wayfinder.from_spec(spec)
    store = ResultsStore(str(tmp_path))
    wayfinder.enable_checkpointing(store, name=spec.name, every=1)
    archived = []

    def archive(session, path):
        copy = "{}.at{}".format(path, len(session.history))
        shutil.copy(path, copy)
        archived.append((len(session.history), copy))

    wayfinder.add_observer(CallbackObserver(on_checkpoint=archive))
    result = wayfinder.specialize()
    return [_trial_tuple(r) for r in result.history], archived


class TestResumeDeterminism:
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("name", sorted(ALGO_OPTIONS))
    def test_resume_reproduces_uninterrupted_run(self, name, workers, tmp_path):
        iterations = 5 if name == "unicorn" else 9
        spec = _spec(name, workers, iterations)
        reference, archived = _full_run_with_checkpoints(spec, tmp_path)
        assert len(reference) == iterations

        # every interior batch boundary is a valid interruption point
        resume_points = [entry for entry in archived if 0 < entry[0] < iterations]
        assert resume_points, "expected mid-run checkpoints to test against"
        for trials_done, path in resume_points:
            resumed = Wayfinder.resume(path)
            session_history = resumed.build_session().session.history
            assert len(session_history) == trials_done
            result = resumed.specialize()
            assert [_trial_tuple(r) for r in result.history] == reference

    def test_resumed_prefix_matches_stored_records(self, tmp_path):
        spec = _spec("random", 4, 9)
        reference, archived = _full_run_with_checkpoints(spec, tmp_path)
        trials_done, path = [entry for entry in archived if 0 < entry[0] < 9][-1]
        resumed = Wayfinder.resume(path)
        prefix = [_trial_tuple(r)
                  for r in resumed.build_session().session.history]
        assert prefix == reference[:trials_done]

    def test_resume_from_finished_checkpoint_is_a_noop_run(self, tmp_path):
        spec = _spec("random", 1, 6)
        reference, archived = _full_run_with_checkpoints(spec, tmp_path)
        final = archived[-1]
        assert final[0] == 6
        result = Wayfinder.resume(final[1]).specialize()
        assert [_trial_tuple(r) for r in result.history] == reference

    def test_resume_can_extend_the_budget(self, tmp_path):
        spec = _spec("random", 1, 6)
        reference, archived = _full_run_with_checkpoints(spec, tmp_path)
        result = Wayfinder.resume(archived[-1][1]).specialize(iterations=10)
        assert result.iterations == 10
        assert [_trial_tuple(r) for r in result.history][:6] == reference


class TestCheckpointStore:
    def test_checkpoint_document_shape(self, tmp_path):
        import json
        import os

        spec = _spec("random", 2, 5)
        _, archived = _full_run_with_checkpoints(spec, tmp_path)
        document = load_checkpoint_file(archived[-1][1])
        assert document["kind"] == "checkpoint"
        assert document["spec"] == spec.to_dict()
        assert len(document["records"]) == 5
        assert document["summary"]["trials"] == 5
        assert isinstance(document["state"], str)
        # the on-disk manifest holds only metadata + a row count: records
        # live in the columnar sidecars and are attached by the loader
        with open(archived[-1][1]) as handle:
            on_disk = json.load(handle)
        assert "records" not in on_disk
        assert on_disk["trials"] == 5
        for sidecar in (on_disk["trial_columns"], on_disk["trial_payloads"]):
            assert os.path.exists(os.path.join(str(tmp_path), sidecar))

    def test_store_lists_checkpoints_separately(self, tmp_path):
        spec = _spec("random", 1, 4)
        wayfinder = Wayfinder.from_spec(spec)
        store = ResultsStore(str(tmp_path))
        wayfinder.enable_checkpointing(store, name="run")
        result = wayfinder.specialize()
        store.save_history("run", result.history)
        assert store.list_checkpoints() == ["run"]
        assert store.list_histories() == ["run"]
        assert store.load_checkpoint("run")["kind"] == "checkpoint"

    def test_checkpoint_cadence_restored_on_resume(self, tmp_path):
        spec = _spec("random", 1, 8)
        wayfinder = Wayfinder.from_spec(spec)
        store = ResultsStore(str(tmp_path))
        wayfinder.enable_checkpointing(store, name="run", every=3)
        wayfinder.specialize()
        resumed = Wayfinder.resume(store.checkpoint_path("run"))
        session = resumed.build_session().session
        assert session.checkpoint_every == 3
        # re-enabling without an explicit cadence keeps the original rhythm
        resumed.enable_checkpointing(store, name="run")
        assert session.checkpoint_every == 3
        resumed.enable_checkpointing(store, name="run", every=5)
        assert session.checkpoint_every == 5

    def test_non_checkpoint_rejected(self, tmp_path, small_linux_model):
        from repro.platform.metrics import ThroughputMetric
        from repro.platform.history import ExplorationHistory

        store = ResultsStore(str(tmp_path))
        path = store.save_history("h", ExplorationHistory(ThroughputMetric()))
        with pytest.raises(ValueError):
            load_checkpoint_file(path)

    def test_custom_hardware_refuses_checkpointing(self, tmp_path):
        from repro.vm.machine import HardwareSpec

        board = HardwareSpec(name="bespoke", cores=2, frequency_ghz=1.0, ram_gb=4)
        wayfinder = Wayfinder.for_linux(application="nginx", algorithm="random",
                                        hardware=board,
                                        space_options=SMALL_SPACE_OPTIONS)
        with pytest.raises(ValueError, match="custom hardware"):
            wayfinder.enable_checkpointing(str(tmp_path))
        # the spec's architecture field remains the supported path
        riscv = Wayfinder.from_spec(_spec("random", 1, 4).with_overrides(
            architecture="riscv64"))
        riscv.enable_checkpointing(str(tmp_path), name="riscv")
        riscv.specialize()
        resumed = Wayfinder.resume(ResultsStore(str(tmp_path)).checkpoint_path("riscv"))
        assert resumed.hardware.architecture == "riscv64"

    def test_restore_requires_fresh_session(self, tmp_path):
        spec = _spec("random", 1, 4)
        _, archived = _full_run_with_checkpoints(spec, tmp_path)
        resumed = Wayfinder.resume(archived[-1][1])
        from repro.platform.results import restore_search_session

        with pytest.raises(ValueError):
            restore_search_session(load_checkpoint_file(archived[-1][1]),
                                   resumed.build_session().session)


class TestLifecycleObservers:
    def _run(self, observer, iterations=6, **spec_kwargs):
        spec = _spec("random", 1, iterations)
        for key, value in spec_kwargs.items():
            spec = spec.with_overrides(**{key: value})
        wayfinder = Wayfinder.from_spec(spec)
        wayfinder.add_observer(observer)
        return wayfinder.specialize()

    def test_callbacks_fire_in_order(self):
        events = []
        observer = CallbackObserver(
            on_batch_start=lambda s, i, k: events.append(("batch", i, k)),
            on_trial=lambda s, r: events.append(("trial", r.index)),
            on_new_incumbent=lambda s, r: events.append(("incumbent", r.index)),
        )
        result = self._run(observer, iterations=6)
        batches = [e for e in events if e[0] == "batch"]
        trials = [e for e in events if e[0] == "trial"]
        incumbents = [e for e in events if e[0] == "incumbent"]
        assert batches[0] == ("batch", 0, 1)  # the default-configuration trial
        assert [index for _, index in trials] == list(range(6))
        # the incumbent trajectory matches the history's best-so-far series
        assert incumbents[0][1] == 0  # default config is the first incumbent
        assert incumbents[-1][1] == result.history.best_record().index

    def test_observers_see_batched_sessions(self):
        planned = []
        observer = CallbackObserver(
            on_batch_start=lambda s, i, k: planned.append(k))
        spec = _spec("random", 4, 9)
        wayfinder = Wayfinder.from_spec(spec)
        wayfinder.add_observer(observer)
        wayfinder.specialize()
        assert planned == [1, 4, 4]  # default alone, then full batches


class TestStopConditions:
    def _wayfinder(self, **overrides):
        spec = _spec("random", 1, 40)
        spec = spec.with_overrides(**overrides)
        return Wayfinder.from_spec(spec)

    def test_iteration_budget_reports_stop_reason(self):
        result = self._wayfinder(iterations=5).specialize()
        assert result.iterations == 5
        assert result.stop_reason == "iterations"

    def test_time_budget_reports_stop_reason(self):
        result = self._wayfinder(iterations=None,
                                 time_budget_s=2000.0).specialize()
        assert result.total_time_s >= 2000.0
        assert result.stop_reason == "time-budget"
        assert result.summary()["time_budget_s"] == 2000.0

    def test_incumbent_plateau_stops_early(self):
        result = self._wayfinder(iterations=40, plateau_trials=3).specialize()
        best_index = result.history.best_record().index
        assert result.stop_reason in ("incumbent-plateau", "iterations")
        if result.stop_reason == "incumbent-plateau":
            assert result.iterations - 1 - best_index >= 3
            assert result.iterations < 40

    def test_explicit_conditions_compose(self):
        wayfinder = self._wayfinder(iterations=None)
        result = wayfinder.specialize(
            stop=[IterationBudget(4), TimeBudget(1e9), IncumbentPlateau(100)])
        assert result.iterations == 4

    def test_condition_validation(self):
        with pytest.raises(ValueError):
            IterationBudget(0)
        with pytest.raises(ValueError):
            TimeBudget(0.0)
        with pytest.raises(ValueError):
            IncumbentPlateau(0)

    def test_describe(self):
        assert IterationBudget(5).describe() == {"condition": "iterations",
                                                 "iterations": 5}
        assert TimeBudget(10.0).describe()["seconds"] == 10.0
        assert IncumbentPlateau(3).describe()["patience"] == 3
        assert isinstance(SessionObserver(), SessionObserver)
