"""Tests for the tuning service: the HTTP/JSON control plane.

Covers the pieces bottom-up — event bus fan-out, per-tenant FIFO queue —
then the HTTP surface end to end against an in-thread server (submission,
structured 400s, NDJSON event streaming, report equality with the CLI),
the manifest-only restart recovery (in-process and across real server
processes with a mid-campaign ``SIGKILL``), and the dict-payload
validation the API surfaces as 400 bodies.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.core.campaign import CampaignSpec
from repro.core.spec import ExperimentSpec
from repro.platform.campaign_runner import CampaignRunner, load_manifest
from repro.service.events import EventBridgeObserver, JobEventBus
from repro.service.queue import JobQueue
from repro.service.server import TuningServer, TuningService

from tests.conftest import SMALL_SPACE_OPTIONS
from tests.test_chaos import history_bytes

BASE = {"metric": "auto", "iterations": 4,
        "space_options": SMALL_SPACE_OPTIONS}


def tiny_campaign_payload(name, iterations=4, algorithms=("random",)):
    return {"name": name, "applications": ["nginx"],
            "algorithms": list(algorithms), "seeds": [3],
            "base": dict(BASE, iterations=iterations)}


def http_json(url, payload=None, method=None):
    """One JSON request; returns (status, parsed body)."""
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def read_events(url, **params):
    query = "&".join("{}={}".format(k, v) for k, v in params.items())
    with urllib.request.urlopen(url + ("?" + query if query else ""),
                                timeout=60) as response:
        return [json.loads(line) for line in response]


class TestJobEventBus:
    def test_replay_then_live_then_sentinel(self):
        bus = JobEventBus()
        bus.publish({"event": "a"})
        subscriber = bus.subscribe()
        bus.publish({"event": "b"})
        bus.close({"event": "end"})
        events = []
        while True:
            item = subscriber.get(timeout=1)
            if item is None:
                break
            events.append(item)
        assert [e["event"] for e in events] == ["a", "b", "end"]
        # sequence numbers are global and ordered
        assert [e["seq"] for e in events] == [0, 1, 2]

    def test_late_subscriber_gets_replay_and_immediate_close(self):
        bus = JobEventBus()
        bus.publish({"event": "a"})
        bus.close()
        subscriber = bus.subscribe()
        assert subscriber.get(timeout=1)["event"] == "a"
        assert subscriber.get(timeout=1) is None

    def test_publish_after_close_is_dropped(self):
        bus = JobEventBus()
        bus.close()
        bus.publish({"event": "late"})
        assert bus.subscribe().get(timeout=1) is None

    def test_replay_buffer_is_bounded(self):
        bus = JobEventBus(replay_limit=3)
        for index in range(10):
            bus.publish({"event": "e{}".format(index)})
        subscriber = bus.subscribe()
        replayed = [subscriber.get_nowait()["event"] for _ in range(3)]
        assert replayed == ["e7", "e8", "e9"]

    def test_observer_bridges_session_callbacks(self):
        bus = JobEventBus()
        observer = EventBridgeObserver(bus, "exp-1")
        subscriber = bus.subscribe()

        class FakeStage:
            value = "benchmark"

        class FakeRecord:
            index = 5
            objective = 123.0
            crashed = False
            failure_stage = FakeStage()
            duration_s = 1.5
            worker = 2

        observer.on_dispatch(None, None, worker=1)
        observer.on_trial(None, FakeRecord())
        events = [subscriber.get_nowait() for _ in range(2)]
        assert events[0]["event"] == "dispatch"
        assert events[0]["experiment"] == "exp-1"
        assert events[1] == {"event": "trial", "experiment": "exp-1",
                             "trial": 5, "objective": 123.0, "crashed": False,
                             "failure_stage": "benchmark", "duration_s": 1.5,
                             "worker": 2, "seq": 1}


class TestJobQueue:
    def test_fifo_within_tenant_round_robin_across(self):
        import threading

        order = []
        gate = threading.Event()

        def execute(tenant, job_id):
            gate.wait(timeout=5)
            order.append(job_id)

        queue = JobQueue(execute, workers=1)
        # enqueue before releasing the gate so ordering is fully queued
        for job in ("a-0", "a-1", "b-0", "a-2", "b-1"):
            queue.enqueue(job.split("-")[0], job)
        gate.set()
        deadline = time.time() + 10
        while len(order) < 5 and time.time() < deadline:
            time.sleep(0.01)
        queue.shutdown()
        assert len(order) == 5
        # within each tenant strict submission order
        assert [j for j in order if j.startswith("a")] == ["a-0", "a-1", "a-2"]
        assert [j for j in order if j.startswith("b")] == ["b-0", "b-1"]
        # across tenants round-robin: b gets a turn before a drains
        assert order.index("b-0") < order.index("a-2")

    def test_execute_errors_are_captured_not_fatal(self):
        done = []

        def execute(tenant, job_id):
            if job_id == "t-bad":
                raise RuntimeError("boom")
            done.append(job_id)

        queue = JobQueue(execute, workers=1)
        queue.enqueue("t", "t-bad")
        queue.enqueue("t", "t-good")
        deadline = time.time() + 10
        while not done and time.time() < deadline:
            time.sleep(0.01)
        queue.shutdown()
        assert done == ["t-good"]
        assert "boom" in queue.last_error("t-bad")
        assert queue.last_error("t-good") is None


@pytest.fixture
def service_root(tmp_path):
    return str(tmp_path / "service-results")


@pytest.fixture
def server(service_root):
    service = TuningService(service_root, workers=1)
    server = TuningServer(service, port=0)
    server.serve_in_thread()
    yield server
    server.shutdown()


def wait_for_phase(base, job, phase, timeout_s=60.0):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        status, body = http_json("{}/v1/jobs/{}".format(base, job))
        assert status == 200
        if body["phase"] == phase:
            return body
        time.sleep(0.05)
    raise AssertionError("job {} never reached phase {!r}".format(job, phase))


class TestHttpApi:
    def test_submit_campaign_stream_events_and_report(self, server,
                                                      service_root):
        base = server.url
        iterations = 4
        status, submitted = http_json(
            base + "/v1/campaigns",
            {"tenant": "acme",
             "campaign": tiny_campaign_payload("svc", iterations)})
        assert status == 201
        job = submitted["job"]
        assert job == "acme-000000"
        assert submitted["experiments"] == ["svc-nginx-random-s3"]

        # the event stream ends when the job does; at least one event per
        # trial is the acceptance bar — here it is exactly one "trial"
        # event per trial plus the lifecycle framing
        events = read_events("{}/v1/jobs/{}/events".format(base, job),
                             timeout_s=60)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "job-started"
        assert kinds[-1] == "job-finished"
        assert kinds.count("trial") == iterations
        assert "experiment-claimed" in kinds
        assert "experiment-finished" in kinds
        trial_events = [e for e in events if e["event"] == "trial"]
        assert [e["trial"] for e in trial_events] == list(range(iterations))
        assert all(e["experiment"] == "svc-nginx-random-s3"
                   for e in trial_events)
        # a late subscriber replays the identical stream
        assert read_events("{}/v1/jobs/{}/events".format(base, job),
                           timeout_s=5) == events

        body = wait_for_phase(base, job, "complete")
        assert body["state"] == "complete"
        assert [e["status"] for e in body["experiments"]] == ["complete"]

        # /report is byte-identical to `campaign report --json`
        directory = os.path.join(service_root, "acme", "000000")
        with urllib.request.urlopen(
                "{}/v1/jobs/{}/report".format(base, job)) as response:
            http_report = response.read().decode()
        from repro.cli import main

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            assert main(["campaign", "report", "--results", directory,
                         "--json"]) == 0
        assert buffer.getvalue() == http_report
        document = json.loads(http_report)
        assert document["campaign"] == "svc"
        assert document["status"] == {"complete": 1}

    def test_submit_experiment_wraps_into_campaign(self, server):
        base = server.url
        status, submitted = http_json(
            base + "/v1/experiments",
            {"spec": dict(BASE, application="redis", algorithm="random",
                          metric="latency", seed=7)})
        assert status == 201
        assert submitted["kind"] == "experiment"
        job = submitted["job"]
        assert job.startswith("default-")
        body = wait_for_phase(base, job, "complete")
        [experiment] = body["experiments"]
        assert experiment["status"] == "complete"
        assert experiment["error"] is None

    def test_validation_errors_are_structured_400s(self, server):
        base = server.url
        cases = [
            ("/v1/experiments", {"spec": {"seed": "three"}},
             "spec field 'seed' must be an integer (got str 'three')"),
            ("/v1/experiments", {"spec": {"bogus": 1}},
             "unknown spec fields: bogus"),
            ("/v1/experiments", {"spec": ["not", "a", "dict"]},
             "spec payload must be a JSON object (got list)"),
            ("/v1/campaigns", {"campaign": {"name": "x",
                                            "applications": "nginx"}},
             "campaign field 'applications' must be a list (got str 'nginx')"),
            ("/v1/campaigns", {"campaign": {"applications": ["nginx"]}},
             "a campaign needs a name"),
            ("/v1/campaigns",
             {"campaign": {"name": "x", "base": {"iterations": "six"}}},
             "spec field 'iterations' must be an integer (got str 'six')"),
        ]
        for path, payload, message in cases:
            status, body = http_json(base + path, payload)
            assert status == 400, (path, payload, body)
            assert body["error"] == message

    def test_request_level_errors(self, server):
        base = server.url
        status, body = http_json(base + "/v1/jobs/acme-000099")
        assert status == 404
        status, body = http_json(base + "/v1/jobs/not-a-job/report")
        assert status == 404
        status, body = http_json(base + "/v1/nope")
        assert status == 404
        status, body = http_json(base + "/v1/experiments",
                                 {"spec": {}, "surprise": 1})
        assert status == 400 and "surprise" in body["error"]
        status, body = http_json(base + "/v1/experiments", {})
        assert status == 400 and "'spec' required" in body["error"]
        # malformed JSON body
        request = urllib.request.Request(base + "/v1/experiments",
                                         data=b"{nope")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        status, body = http_json(base + "/v1/health")
        assert status == 200 and body == {"status": "ok"}

    def test_jobs_listing(self, server):
        base = server.url
        status, body = http_json(base + "/v1/jobs")
        assert status == 200 and body["jobs"] == []
        http_json(base + "/v1/campaigns",
                  {"tenant": "acme", "campaign": tiny_campaign_payload("l1")})
        status, body = http_json(base + "/v1/jobs")
        assert [job["job"] for job in body["jobs"]] == ["acme-000000"]
        assert body["jobs"][0]["campaign"] == "l1"


class TestRecovery:
    def test_restart_recovers_queued_manifest_and_sweeps_tmp(self,
                                                             service_root):
        # a previous server prepared a job but died before running it;
        # its crash left an orphaned staging file behind
        campaign = CampaignSpec.from_dict(tiny_campaign_payload("rec"))
        directory = os.path.join(service_root, "acme", "000000")
        CampaignRunner(campaign, directory, procs=1).prepare()
        stale = os.path.join(directory, "rec-nginx-random-s3.json.99999.tmp")
        with open(stale, "w") as handle:
            handle.write("{")

        service = TuningService(service_root, workers=1)
        try:
            assert service._recovered == ["acme-000000"]
            assert not os.path.exists(stale)  # pid 99999 is not running
            deadline = time.time() + 60
            while time.time() < deadline:
                if load_manifest(directory)["state"] == "complete":
                    break
                time.sleep(0.05)
            assert load_manifest(directory)["state"] == "complete"
            # a fresh submission from the same tenant continues the sequence
            submitted = service.submit_campaign(
                "acme", tiny_campaign_payload("rec2"))
            assert submitted["job"] == "acme-000001"
        finally:
            service.shutdown()

    def test_completed_jobs_are_not_re_enqueued(self, service_root):
        service = TuningService(service_root, workers=1)
        try:
            job = service.submit_campaign(
                "acme", tiny_campaign_payload("done"))["job"]
            directory = os.path.join(service_root, "acme", "000000")
            deadline = time.time() + 60
            while time.time() < deadline:
                if load_manifest(directory)["state"] == "complete":
                    break
                time.sleep(0.05)
        finally:
            service.shutdown()
        second = TuningService(service_root, workers=1)
        try:
            assert second._recovered == []
            # manifest facts still served for pre-restart jobs
            status = second.job_status(job)
            assert status["phase"] == "complete"
            bus = second.job_events(job)
            subscriber = bus.subscribe()
            final = subscriber.get(timeout=1)
            assert final["event"] == "job-finished"
            assert subscriber.get(timeout=1) is None
        finally:
            second.shutdown()


def _spawn_server(results_root, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--results",
         results_root, "--port", "0", "--workers", "1", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    base = None
    deadline = time.time() + 60
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if line.startswith("listening on "):
            base = line.split("listening on ", 1)[1].strip()
            break
    if base is None:
        process.kill()
        raise AssertionError("server never announced its address")
    return process, base


class TestServerProcessRestart:
    def test_sigkill_mid_campaign_then_restart_completes_bit_exact(
            self, tmp_path):
        """The acceptance-criteria restart test: a server killed mid-campaign
        loses nothing — a fresh ``repro serve`` on the same results root
        recovers the job from its manifest and drives it to records
        byte-identical to an uninterrupted run."""
        root = str(tmp_path / "root")
        payload = tiny_campaign_payload("restart", iterations=12)
        process, base = _spawn_server(root, "--lease-s", "0.5")
        try:
            status, submitted = http_json(
                base + "/v1/campaigns",
                {"tenant": "acme", "campaign": payload})
            assert status == 201
            job = submitted["job"]
            # follow the live stream until the search is demonstrably mid-
            # flight (two trials committed), then kill -9 the server
            with urllib.request.urlopen(
                    "{}/v1/jobs/{}/events".format(base, job),
                    timeout=60) as stream:
                trials = 0
                for line in stream:
                    if json.loads(line)["event"] == "trial":
                        trials += 1
                        if trials >= 2:
                            break
        finally:
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=10)

        process, base = _spawn_server(root, "--lease-s", "0.5")
        try:
            body = wait_for_phase(base, job, "complete", timeout_s=120)
            assert [e["status"] for e in body["experiments"]] == ["complete"]
        finally:
            process.terminate()
            process.wait(timeout=10)

        # reference: the same campaign run uninterrupted, no service involved
        campaign = CampaignSpec.from_dict(payload)
        reference_dir = str(tmp_path / "reference")
        result = CampaignRunner(campaign, reference_dir, procs=1).run()
        assert result.ok
        job_dir = os.path.join(root, "acme", "000000")
        assert history_bytes(job_dir, campaign) == history_bytes(
            reference_dir, campaign)


class TestPayloadHardening:
    """Satellite: malformed dicts name the offending key and expected type."""

    def test_spec_field_type_errors(self):
        cases = [
            ({"seed": "three"},
             "spec field 'seed' must be an integer (got str 'three')"),
            ({"seed": True},
             "spec field 'seed' must be an integer (got bool True)"),
            ({"iterations": 2.5},
             "spec field 'iterations' must be an integer (got float 2.5)"),
            ({"enable_skip_build": "yes"},
             "spec field 'enable_skip_build' must be a boolean "
             "(got str 'yes')"),
            ({"frozen": ["a"]},
             "spec field 'frozen' must be an object (got list ['a'])"),
            ({"application": 7},
             "spec field 'application' must be a string (got int 7)"),
        ]
        for payload, message in cases:
            with pytest.raises(ValueError, match="^" + re.escape(message) + "$"):
                ExperimentSpec.from_dict(payload)

    def test_spec_nullable_fields_accept_null(self):
        spec = ExperimentSpec.from_dict(
            {"iterations": None, "favor": None, "time_budget_s": None,
             "frozen": None})
        assert spec.iterations is None and spec.favor is None

    def test_spec_payload_must_be_object(self):
        with pytest.raises(ValueError,
                           match="spec payload must be a JSON object"):
            ExperimentSpec.from_dict([1, 2])

    def test_campaign_axes_must_be_lists(self):
        with pytest.raises(ValueError,
                           match="campaign field 'applications' must be a "
                                 "list"):
            CampaignSpec(name="x", applications="nginx")
        with pytest.raises(ValueError,
                           match="campaign field 'seeds' must be a list of "
                                 "integers"):
            CampaignSpec(name="x", seeds=["zero"])
        with pytest.raises(ValueError,
                           match="campaign field 'algorithms' must be a "
                                 "list"):
            CampaignSpec(name="x", algorithms="random")
        with pytest.raises(ValueError,
                           match="campaign field 'base' must be an object"):
            CampaignSpec(name="x", base="iterations")
        with pytest.raises(ValueError,
                           match="campaign field 'overrides' must be a "
                                 "list"):
            CampaignSpec(name="x", overrides={"set": {}})
        with pytest.raises(ValueError,
                           match="campaign field 'name' must be a non-empty "
                                 "string"):
            CampaignSpec(name=7)

    def test_campaign_base_fields_type_checked(self):
        with pytest.raises(ValueError,
                           match="spec field 'iterations' must be an "
                                 "integer"):
            CampaignSpec(name="x", base={"iterations": "six"})

    def test_campaign_payload_must_be_object(self):
        with pytest.raises(ValueError,
                           match="campaign payload must be a JSON object"):
            CampaignSpec.from_dict(["x"])

    def test_round_trip_still_works(self):
        campaign = CampaignSpec.from_dict(tiny_campaign_payload("rt"))
        assert CampaignSpec.from_dict(campaign.to_dict()) == campaign
        spec = campaign.expand()[0]
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec


class TestReportDocument:
    """Satellite: machine-readable report pinned content-equal to the text."""

    def _campaign_dir(self, tmp_path):
        campaign = CampaignSpec.from_dict(
            tiny_campaign_payload("doc", algorithms=("random", "grid")))
        directory = str(tmp_path / "campaign")
        assert CampaignRunner(campaign, directory, procs=1).run().ok
        return directory

    def test_document_matches_rendered_tables(self, tmp_path):
        from repro.analysis.campaign_report import (
            best_objective_table, campaign_report_document, load_campaign,
            render_campaign_report, time_to_best_table)

        directory = self._campaign_dir(tmp_path)
        document = campaign_report_document(directory)
        results = load_campaign(directory)

        # every numeric cell of the text tables is the formatted twin of
        # the document's raw value
        text = best_objective_table(results)
        for row in document["best_objective"]["rows"]:
            assert row[0] in text
            for value in row[1:]:
                assert "{:.2f}".format(value) in text
        text = time_to_best_table(results)
        for row in document["time_to_best"]["rows"]:
            algorithm, experiments, ttb_h, improvement, crash, util = row
            assert algorithm in text
            assert "{:.2f}".format(ttb_h) in text
            assert "{:.2f}x".format(improvement) in text
        assert document["status"] == {"complete": 2}
        assert document["experiments"] == 2
        assert [series["algorithm"]
                for series in document["per_iteration_cost"]] == \
            ["random", "grid"]
        for series in document["per_iteration_cost"]:
            assert len(series["points"]) == 4
        assert document["failed"]["rows"] == []
        # the full text report still renders (shared documents underneath)
        assert "mean best objective" in render_campaign_report(directory)

    def test_document_is_json_round_trippable(self, tmp_path):
        from repro.analysis.campaign_report import campaign_report_document

        directory = self._campaign_dir(tmp_path)
        document = campaign_report_document(directory)
        assert json.loads(json.dumps(document)) == document


def fake_job(root, tenant, seq, campaign="camp", state="complete"):
    """A minimal complete on-disk job: directory + loadable manifest."""
    from repro.platform.campaign_runner import MANIFEST_FORMAT_VERSION

    directory = os.path.join(root, tenant, "{:06d}".format(seq))
    os.makedirs(directory, exist_ok=True)
    manifest = {"kind": "campaign",
                "format_version": MANIFEST_FORMAT_VERSION,
                "campaign": {"name": campaign}, "invocation": None,
                "experiments": [], "state": state}
    with open(os.path.join(directory, "campaign.json"), "w") as handle:
        json.dump(manifest, handle)
    return directory


class TestJobsPagination:
    def _service(self, service_root, jobs=7):
        for seq in range(jobs):
            tenant = "acme" if seq % 2 == 0 else "zeta"
            fake_job(service_root, tenant, seq, campaign="c{}".format(seq))
        service = TuningService(service_root, workers=1)
        service.shutdown()  # listing is disk-driven; no workers needed
        return service

    def test_stable_tenant_then_sequence_order(self, service_root):
        service = self._service(service_root)
        body = service.list_jobs()
        assert [job["job"] for job in body["jobs"]] == [
            "acme-000000", "acme-000002", "acme-000004", "acme-000006",
            "zeta-000001", "zeta-000003", "zeta-000005"]
        assert body["total"] == 7 and body["offset"] == 0
        assert "limit" not in body

    def test_offset_and_limit_slice_the_listing(self, service_root):
        service = self._service(service_root)
        everything = [job["job"] for job in service.list_jobs()["jobs"]]
        body = service.list_jobs(offset=2, limit=3)
        assert [job["job"] for job in body["jobs"]] == everything[2:5]
        assert body["total"] == 7
        assert body["offset"] == 2 and body["limit"] == 3
        # walking pages tiles the full listing with no gaps or overlaps
        paged = []
        for offset in range(0, 7, 3):
            paged.extend(job["job"] for job in
                         service.list_jobs(offset=offset, limit=3)["jobs"])
        assert paged == everything
        # past-the-end pages are empty, not errors
        assert service.list_jobs(offset=99, limit=3)["jobs"] == []

    def test_http_pagination_and_validation(self, server, service_root):
        base = server.url
        for seq in range(3):
            fake_job(service_root, "acme", seq)
        status, body = http_json(base + "/v1/jobs?offset=1&limit=1")
        assert status == 200
        assert [job["job"] for job in body["jobs"]] == ["acme-000001"]
        assert body["total"] == 3
        # malformed or out-of-range parameters are structured 400s
        for query in ("offset=abc", "limit=zero", "offset=-1", "limit=0"):
            status, body = http_json(base + "/v1/jobs?" + query)
            assert status == 400, query
            assert "query parameter" in body["error"]


class TestReportCache:
    def test_cache_hits_until_the_manifest_changes(self, tmp_path):
        from repro.service.cache import ReportCache

        manifest = str(tmp_path / "campaign.json")
        with open(manifest, "w") as handle:
            handle.write("{\"v\": 1}")
        cache = ReportCache()
        builds = []

        def build():
            builds.append(1)
            return {"report": len(builds)}

        directory = str(tmp_path)
        assert cache.get(directory, manifest, build) == {"report": 1}
        assert cache.get(directory, manifest, build) == {"report": 1}
        assert len(builds) == 1 and cache.hits == 1
        # any manifest byte change invalidates
        with open(manifest, "w") as handle:
            handle.write("{\"v\": 2}")
        assert cache.get(directory, manifest, build) == {"report": 2}
        assert len(builds) == 2

    def test_lru_eviction_is_bounded(self, tmp_path):
        from repro.service.cache import ReportCache

        cache = ReportCache(capacity=2)
        manifests = []
        for index in range(3):
            manifest = str(tmp_path / "m{}.json".format(index))
            with open(manifest, "w") as handle:
                handle.write("{}")
            manifests.append((str(tmp_path / "d{}".format(index)), manifest))
        for directory, manifest in manifests:
            cache.get(directory, manifest, dict)
        assert cache.misses == 3
        # the oldest entry (d0) was evicted; d2 is still warm
        cache.get(*manifests[2], build=dict)
        assert cache.hits == 1
        cache.get(*manifests[0], build=dict)
        assert cache.misses == 4

    def test_job_report_builds_once_per_manifest_version(self, service_root,
                                                         monkeypatch):
        import repro.analysis.campaign_report as campaign_report

        directory = fake_job(service_root, "acme", 0)
        service = TuningService(service_root, workers=1)
        service.shutdown()
        builds = []

        def counting_document(path):
            builds.append(path)
            return {"document": len(builds)}

        monkeypatch.setattr(campaign_report, "campaign_report_document",
                            counting_document)
        assert service.job_report("acme-000000") == {"document": 1}
        assert service.job_report("acme-000000") == {"document": 1}
        assert builds == [directory]
        # a manifest rewrite (new experiment completed, say) rebuilds
        fake_job(service_root, "acme", 0, campaign="renamed")
        assert service.job_report("acme-000000") == {"document": 2}
        assert len(builds) == 2
