"""Unit tests for the numpy neural-network stack (layers, losses, optimizer)."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Dropout, RBFLayer, ReLU, Sequential
from repro.nn.losses import (
    chamfer_distance,
    heteroscedastic_regression_loss,
    softmax_cross_entropy,
)
from repro.nn.normalize import StandardScaler
from repro.nn.optimizer import Adam


RNG = np.random.default_rng(0)


def numerical_gradient(function, array, epsilon=1e-6):
    """Central-difference gradient of a scalar function of *array*."""
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = function()
        flat[index] = original - epsilon
        minus = function()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * epsilon)
    return grad


class TestDense:
    def test_forward_shape(self):
        layer = Dense(5, 3, rng=RNG)
        out = layer.forward(np.ones((4, 5)))
        assert out.shape == (4, 3)

    def test_backward_gradient_matches_numerical(self):
        layer = Dense(4, 3, rng=np.random.default_rng(1))
        x = np.random.default_rng(2).normal(size=(6, 4))
        target_grad = np.random.default_rng(3).normal(size=(6, 3))

        def loss():
            return float(np.sum(layer.forward(x) * target_grad))

        layer.zero_grad()
        layer.forward(x)
        grad_input = layer.backward(target_grad)

        numeric_w = numerical_gradient(loss, layer.weights)
        assert np.allclose(numeric_w, layer.grad_weights, atol=1e-4)
        numeric_x = numerical_gradient(loss, x)
        assert np.allclose(numeric_x, grad_input, atol=1e-4)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))


class TestReLUDropout:
    def test_relu_masks_negative(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 2.0]]))
        assert out.tolist() == [[0.0, 2.0]]
        grad = layer.backward(np.array([[1.0, 1.0]]))
        assert grad.tolist() == [[0.0, 1.0]]

    def test_dropout_identity_at_inference(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((4, 4))
        assert np.allclose(layer.forward(x, training=False), x)

    def test_dropout_preserves_expectation(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((2000, 10))
        out = layer.forward(x, training=True)
        assert abs(out.mean() - 1.0) < 0.1

    def test_dropout_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestRBFLayer:
    def test_activation_bounds_and_peak(self):
        layer = RBFLayer(3, 4, gamma=1.0, rng=np.random.default_rng(0))
        layer.centroids[0] = np.array([1.0, 2.0, 3.0])
        out = layer.forward(np.array([[1.0, 2.0, 3.0]]))
        assert out.shape == (1, 4)
        assert out[0, 0] == pytest.approx(1.0)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    def test_far_input_gives_low_activation(self):
        layer = RBFLayer(3, 2, gamma=0.5, rng=np.random.default_rng(0))
        out = layer.forward(np.array([[100.0, 100.0, 100.0]]))
        assert np.all(out < 1e-3)

    def test_backward_gradient_matches_numerical(self):
        layer = RBFLayer(3, 2, gamma=0.7, rng=np.random.default_rng(1))
        x = np.random.default_rng(2).normal(size=(4, 3))
        weights = np.random.default_rng(3).normal(size=(4, 2))

        def loss():
            return float(np.sum(layer.forward(x) * weights))

        layer.zero_grad()
        layer.forward(x)
        grad_input = layer.backward(weights)
        numeric_c = numerical_gradient(loss, layer.centroids)
        assert np.allclose(numeric_c, layer.grad_centroids, atol=1e-4)
        numeric_x = numerical_gradient(loss, x)
        assert np.allclose(numeric_x, grad_input, atol=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            RBFLayer(3, 0)
        with pytest.raises(ValueError):
            RBFLayer(3, 2, gamma=0.0)


class TestSequential:
    def test_stack_trains_toward_target(self):
        rng = np.random.default_rng(5)
        model = Sequential([Dense(3, 16, rng=rng), ReLU(), Dense(16, 1, rng=rng)])
        optimizer = Adam(learning_rate=0.01)
        x = rng.normal(size=(64, 3))
        y = (x[:, 0] * 2.0 - x[:, 1]).reshape(-1, 1)
        first_loss = None
        for _ in range(200):
            model.zero_grad()
            prediction = model.forward(x, training=True)
            error = prediction - y
            loss = float(np.mean(error ** 2))
            if first_loss is None:
                first_loss = loss
            model.backward(2.0 * error / len(x))
            optimizer.step(model.parameters())
        assert loss < first_loss * 0.2

    def test_output_dim(self):
        model = Sequential([Dense(3, 7), ReLU()])
        assert model.output_dim == 7


class TestLosses:
    def test_softmax_cross_entropy_perfect_prediction(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        labels = np.array([0, 1])
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss < 1e-4
        assert np.allclose(grad, 0.0, atol=1e-4)

    def test_softmax_cross_entropy_gradient_matches_numerical(self):
        logits = np.random.default_rng(0).normal(size=(5, 2))
        labels = np.array([0, 1, 1, 0, 1])

        def loss():
            value, _ = softmax_cross_entropy(logits, labels)
            return value

        _, grad = softmax_cross_entropy(logits, labels)
        numeric = numerical_gradient(loss, logits)
        assert np.allclose(numeric, grad, atol=1e-5)

    def test_softmax_cross_entropy_empty(self):
        loss, grad = softmax_cross_entropy(np.empty((0, 2)), np.empty((0,), dtype=int))
        assert loss == 0.0

    def test_heteroscedastic_loss_gradients(self):
        rng = np.random.default_rng(1)
        mean = rng.normal(size=6)
        log_var = rng.normal(size=6) * 0.3
        targets = rng.normal(size=6)

        def loss_mean():
            value, _, _ = heteroscedastic_regression_loss(mean, log_var, targets)
            return value

        _, grad_mean, grad_log_var = heteroscedastic_regression_loss(mean, log_var, targets)
        assert np.allclose(numerical_gradient(loss_mean, mean), grad_mean, atol=1e-5)
        assert np.allclose(numerical_gradient(loss_mean, log_var), grad_log_var, atol=1e-5)

    def test_heteroscedastic_loss_masks_nan_targets(self):
        mean = np.array([1.0, 2.0])
        log_var = np.zeros(2)
        targets = np.array([np.nan, 2.0])
        loss, grad_mean, _ = heteroscedastic_regression_loss(mean, log_var, targets)
        assert grad_mean[0] == 0.0
        assert loss == pytest.approx(0.0, abs=1e-9)

    def test_heteroscedastic_loss_all_masked(self):
        loss, grad_mean, grad_log_var = heteroscedastic_regression_loss(
            np.ones(3), np.zeros(3), np.full(3, np.nan))
        assert loss == 0.0
        assert np.all(grad_mean == 0.0)

    def test_chamfer_zero_when_centroids_on_points(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        loss, grad = chamfer_distance(points.copy(), points)
        assert loss == pytest.approx(0.0)
        assert np.allclose(grad, 0.0)

    def test_chamfer_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        centroids = rng.normal(size=(3, 2))
        points = rng.normal(size=(7, 2))

        def loss():
            value, _ = chamfer_distance(centroids, points)
            return value

        _, grad = chamfer_distance(centroids, points)
        numeric = numerical_gradient(loss, centroids)
        assert np.allclose(numeric, grad, atol=1e-4)

    def test_chamfer_pulls_centroids_toward_data(self):
        centroids = np.array([[5.0, 5.0]])
        points = np.zeros((10, 2))
        optimizer = Adam(learning_rate=0.3)
        for _ in range(200):
            _, grad = chamfer_distance(centroids, points)
            optimizer.step([(centroids, grad)])
        assert np.linalg.norm(centroids) < 0.5

    def test_chamfer_empty_points(self):
        loss, grad = chamfer_distance(np.ones((2, 3)), np.empty((0, 3)))
        assert loss == 0.0
        assert grad.shape == (2, 3)


class TestAdam:
    def test_minimizes_quadratic(self):
        x = np.array([5.0, -3.0])
        optimizer = Adam(learning_rate=0.1)
        for _ in range(300):
            grad = 2.0 * x
            optimizer.step([(x, grad)])
        assert np.allclose(x, 0.0, atol=1e-2)

    def test_learning_rate_validation(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=0.0)

    def test_reset(self):
        optimizer = Adam()
        x = np.array([1.0])
        optimizer.step([(x, np.array([1.0]))])
        optimizer.reset()
        assert optimizer._step == 0


class TestStandardScaler:
    def test_fit_transform_roundtrip(self):
        data = np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(100, 4))
        scaler = StandardScaler()
        transformed = scaler.fit_transform(data)
        assert np.allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(transformed.std(axis=0), 1.0, atol=1e-9)
        assert np.allclose(scaler.inverse_transform(transformed), data)

    def test_constant_columns_tolerated(self):
        data = np.ones((10, 2))
        scaler = StandardScaler().fit(data)
        assert np.all(np.isfinite(scaler.transform(data)))

    def test_one_dimensional_input(self):
        data = np.array([1.0, 2.0, 3.0])
        scaler = StandardScaler()
        out = scaler.fit_transform(data)
        assert out.shape == (3,)
        assert np.allclose(scaler.inverse_transform(out), data)

    def test_unfitted_transform_is_identity(self):
        scaler = StandardScaler()
        data = np.array([[1.0, 2.0]])
        assert np.allclose(scaler.transform(data), data)

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.empty((0, 2)))
