"""Tests for scripts/check_bench_regression.py (the nightly CI guard)."""

import importlib.util
import json
import os

_SCRIPT = os.path.join(os.path.dirname(__file__), os.pardir, "scripts",
                       "check_bench_regression.py")
_spec = importlib.util.spec_from_file_location("check_bench_regression",
                                               _SCRIPT)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)


def artifact(**overrides):
    """A healthy BENCH_hotpaths.json document; overrides patch sections."""
    document = {
        "deeptune_flat_iteration": {"ratio": 1.0, "mean_iteration_ms": 10.0},
        "batch_encoding": {"speedup": 4.0},
        "batched_execution": {"virtual_speedup": 3.0},
        "async_execution": {"virtual_speedup": 1.5},
        "million_trial_store": {"flat_ratio": 1.1,
                                "checkpoint_time_ratio": 1.1},
        "forest_scoring": {"speedup": 6.0},
        "report_aggregation": {"streaming_ms": 50.0},
        "payload_sidecar": {"ratio": 0.2},
    }
    for section, patch in overrides.items():
        document.setdefault(section, {}).update(patch)
    return document


class TestCompare:
    def test_identical_artifacts_pass(self):
        assert bench.compare(artifact(), artifact(), 0.25) == []

    def test_lower_is_better_regression_above_threshold(self):
        # ratio grew 30% > the 25% allowance
        current = artifact(deeptune_flat_iteration={"ratio": 1.3})
        (message,) = bench.compare(artifact(), current, 0.25)
        assert "deeptune_flat_iteration.ratio" in message

    def test_lower_is_better_within_threshold_passes(self):
        current = artifact(deeptune_flat_iteration={"ratio": 1.2})
        assert bench.compare(artifact(), current, 0.25) == []

    def test_higher_is_better_regression_above_threshold(self):
        # speedup 4.0 -> 3.0 is below old/(1+0.25) = 3.2
        current = artifact(batch_encoding={"speedup": 3.0})
        (message,) = bench.compare(artifact(), current, 0.25)
        assert "batch_encoding.speedup" in message

    def test_higher_is_better_within_threshold_passes(self):
        current = artifact(batch_encoding={"speedup": 3.3})
        assert bench.compare(artifact(), current, 0.25) == []

    def test_improvements_never_flag(self):
        current = artifact(deeptune_flat_iteration={"ratio": 0.5},
                           batch_encoding={"speedup": 8.0})
        assert bench.compare(artifact(), current, 0.25) == []

    def test_missing_baseline_metric_is_skipped(self, capsys):
        # a metric introduced by a newer PR has no baseline: reported as
        # new, never blocks the run
        previous = artifact()
        del previous["async_execution"]["virtual_speedup"]
        assert bench.compare(previous, artifact(), 0.25) == []
        assert "new metric, no baseline" in capsys.readouterr().out

    def test_missing_current_metric_is_a_regression(self):
        current = artifact()
        del current["batched_execution"]["virtual_speedup"]
        (message,) = bench.compare(artifact(), current, 0.25)
        assert "missing from the current run" in message

    def test_threshold_is_respected(self):
        current = artifact(deeptune_flat_iteration={"ratio": 1.3})
        assert bench.compare(artifact(), current, 0.5) == []
        assert len(bench.compare(artifact(), current, 0.1)) == 1

    def test_report_streaming_time_is_guarded(self):
        # the streaming report metric is lower-is-better wall time
        current = artifact(report_aggregation={"streaming_ms": 80.0})
        (message,) = bench.compare(artifact(), current, 0.25)
        assert "report_aggregation.streaming_ms" in message
        assert bench.compare(
            artifact(), artifact(report_aggregation={"streaming_ms": 40.0}),
            0.25) == []

    def test_sidecar_compression_ratio_is_guarded(self):
        # compressed/raw bytes growing past the allowance must flag
        current = artifact(payload_sidecar={"ratio": 0.4})
        (message,) = bench.compare(artifact(), current, 0.25)
        assert "payload_sidecar.ratio" in message
        assert bench.compare(
            artifact(), artifact(payload_sidecar={"ratio": 0.1}), 0.25) == []


class TestMain:
    def _write(self, path, document):
        with open(path, "w") as handle:
            json.dump(document, handle)
        return str(path)

    def test_exit_zero_on_pass_and_one_on_regression(self, tmp_path, capsys):
        previous = self._write(tmp_path / "prev.json", artifact())
        current = self._write(tmp_path / "cur.json", artifact())
        assert bench.main([previous, current]) == 0
        assert "no benchmark regressions" in capsys.readouterr().out

        regressed = self._write(
            tmp_path / "bad.json", artifact(batch_encoding={"speedup": 1.0}))
        assert bench.main([previous, regressed]) == 1
        assert "regressions detected" in capsys.readouterr().err

    def test_custom_threshold_flag(self, tmp_path):
        previous = self._write(tmp_path / "prev.json", artifact())
        current = self._write(
            tmp_path / "cur.json",
            artifact(deeptune_flat_iteration={"ratio": 1.3}))
        assert bench.main([previous, current]) == 1
        assert bench.main([previous, current, "--threshold", "0.5"]) == 0

    def test_smoke_vs_full_budgets_skip_the_guard(self, tmp_path, capsys):
        previous = self._write(tmp_path / "prev.json",
                               artifact(batch_encoding={"smoke": True,
                                                        "speedup": 10.0}))
        current = self._write(
            tmp_path / "cur.json", artifact(batch_encoding={"speedup": 1.0}))
        assert bench.main([previous, current]) == 0
        assert "different budgets" in capsys.readouterr().out
