"""Property-based tests (hypothesis) on the core data structures and invariants."""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.stats import normalized_mae
from repro.config.encoding import ConfigEncoder
from repro.config.parameter import (
    BoolParameter,
    CategoricalParameter,
    IntParameter,
    ParameterKind,
    TristateParameter,
)
from repro.config.space import ConfigSpace
from repro.deeptune.scoring import dissimilarity
from repro.nn.losses import chamfer_distance, softmax_cross_entropy
from repro.nn.normalize import StandardScaler
from repro.platform.metrics import CompositeScoreMetric
from repro.sysctl.procfs import ProcFS


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

def int_parameters():
    return st.tuples(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=1, max_value=10_000_000),
        st.booleans(),
    ).map(lambda t: IntParameter(
        "int_param", ParameterKind.RUNTIME,
        default=t[0] if t[0] <= t[0] + t[1] else t[0],
        minimum=min(t[0], t[0] + t[1]),
        maximum=max(t[0], t[0] + t[1]),
        log_scale=t[2],
    ))


def small_spaces(seed=0):
    parameters = [
        BoolParameter("b0", ParameterKind.COMPILE_TIME, default=True),
        BoolParameter("b1", ParameterKind.RUNTIME, default=False),
        TristateParameter("t0", ParameterKind.COMPILE_TIME, default="m"),
        IntParameter("i0", ParameterKind.RUNTIME, default=100, minimum=1, maximum=100000,
                     log_scale=True),
        IntParameter("i1", ParameterKind.BOOT_TIME, default=4, minimum=0, maximum=16),
        CategoricalParameter("c0", ParameterKind.RUNTIME, choices=("a", "b", "c")),
    ]
    return ConfigSpace(parameters, name="property-space")


PROPERTY_SPACE = small_spaces()
PROPERTY_ENCODER = ConfigEncoder(PROPERTY_SPACE)


# ---------------------------------------------------------------------------
# Parameter properties
# ---------------------------------------------------------------------------

@given(value=st.integers(min_value=-10 ** 12, max_value=10 ** 12), param=int_parameters())
def test_int_clip_always_valid(value, param):
    assert param.validate(param.clip(value))


@given(param=int_parameters(), seed=st.integers(min_value=0, max_value=10 ** 6))
def test_int_sample_within_bounds(param, seed):
    value = param.sample(random.Random(seed))
    assert param.minimum <= value <= param.maximum


@given(param=int_parameters(), value=st.integers(min_value=0, max_value=10 ** 9))
def test_int_encode_bounded_and_decode_valid(param, value):
    encoded = param.encode(param.clip(value))
    assert 0.0 <= encoded[0] <= 1.0
    assert param.validate(param.decode(encoded))


@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_sampled_configurations_encode_decode_categoricals(seed):
    config = PROPERTY_SPACE.sample_configuration(random.Random(seed))
    decoded = PROPERTY_ENCODER.decode(PROPERTY_ENCODER.encode(config))
    for parameter in PROPERTY_SPACE.parameters():
        if parameter.is_categorical:
            assert decoded[parameter.name] == config[parameter.name]


@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       rate=st.floats(min_value=0.0, max_value=1.0))
def test_mutation_produces_valid_values(seed, rate):
    rng = random.Random(seed)
    config = PROPERTY_SPACE.default_configuration()
    mutated = PROPERTY_SPACE.mutate_configuration(config, rng, mutation_rate=rate)
    for parameter in PROPERTY_SPACE.parameters():
        assert parameter.validate(parameter.clip(mutated[parameter.name]))


@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_encoding_width_is_stable(seed):
    config = PROPERTY_SPACE.sample_configuration(random.Random(seed))
    assert PROPERTY_ENCODER.encode(config).shape == (PROPERTY_ENCODER.width,)


# ---------------------------------------------------------------------------
# Scoring / numeric properties
# ---------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=10 ** 6))
def test_dissimilarity_in_unit_interval(n_candidates, n_known, seed):
    rng = np.random.default_rng(seed)
    candidates = rng.normal(size=(n_candidates, 5))
    known = rng.normal(size=(n_known, 5))
    values = dissimilarity(candidates, known)
    assert np.all(values >= 0.0) and np.all(values < 1.0)


@given(st.integers(min_value=0, max_value=10 ** 6))
def test_dissimilarity_zero_for_member_of_history(seed):
    rng = np.random.default_rng(seed)
    known = rng.normal(size=(4, 6))
    assert dissimilarity(known[:1], known)[0] == pytest.approx(0.0, abs=1e-12)


@given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=10 ** 6))
def test_softmax_cross_entropy_nonnegative(n, seed):
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=(n, 2)) * 3
    labels = rng.integers(0, 2, size=n)
    loss, grad = softmax_cross_entropy(logits, labels)
    assert loss >= 0.0
    assert grad.shape == logits.shape


@given(st.integers(min_value=1, max_value=10), st.integers(min_value=1, max_value=20),
       st.integers(min_value=0, max_value=10 ** 6))
def test_chamfer_nonnegative_and_symmetric_under_identity(k, n, seed):
    rng = np.random.default_rng(seed)
    centroids = rng.normal(size=(k, 3))
    points = rng.normal(size=(n, 3))
    loss, grad = chamfer_distance(centroids, points)
    assert loss >= 0.0
    assert grad.shape == centroids.shape


@settings(suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=2, max_size=50))
def test_standard_scaler_inverse_roundtrip(values):
    data = np.array(values).reshape(-1, 1)
    scaler = StandardScaler()
    transformed = scaler.fit_transform(data)
    assert np.allclose(scaler.inverse_transform(transformed), data, atol=1e-6 * (1 + np.abs(data).max()))


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                min_size=2, max_size=30),
       st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                min_size=2, max_size=30))
def test_normalized_mae_nonnegative(predicted, actual):
    n = min(len(predicted), len(actual))
    assert normalized_mae(predicted[:n], actual[:n]) >= 0.0


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
                          st.floats(min_value=1.0, max_value=1e4, allow_nan=False)),
                min_size=1, max_size=40))
def test_composite_score_bounded(pairs):
    metric = CompositeScoreMetric()
    for throughput, memory in pairs:
        score = metric.score(throughput, memory)
        assert -1.0 <= score <= 1.0


# ---------------------------------------------------------------------------
# ProcFS properties
# ---------------------------------------------------------------------------

@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=60),
                          st.integers(min_value=-10 ** 7, max_value=10 ** 9)),
                min_size=1, max_size=25))
def test_procfs_writes_never_corrupt_state(writes):
    procfs = ProcFS(extra_generic=0)
    paths = procfs.list_writable()
    for path_index, value in writes:
        if procfs.crashed:
            break
        path = paths[path_index % len(paths)]
        entry = procfs.entry(path)
        accepted = procfs.write(path, value)
        if accepted and not entry.is_categorical:
            stored = int(procfs.read(path))
            assert entry.minimum is None or stored >= entry.minimum
            assert entry.maximum is None or stored <= entry.maximum
