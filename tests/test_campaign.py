"""Campaign expansion, multi-process execution, fault-tolerant resume.

The acceptance bar of the campaign subsystem: per-experiment results are
byte-identical (records and summaries) whatever the process count, and an
interrupted campaign — killed between experiments or mid-experiment with
only a checkpoint on disk — resumed with ``resume=True`` reproduces the
uninterrupted campaign exactly, manifest included.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.config.jobfile import dump_campaign_file, load_campaign_file
from repro.core.campaign import CampaignSpec
from repro.core.spec import ExperimentSpec
from repro.core.wayfinder import Wayfinder
from repro.platform.campaign_runner import (
    CampaignRunner,
    load_manifest,
)
from repro.platform.results import ResultsStore

from tests.conftest import SMALL_SPACE_OPTIONS

#: the 2-app x 2-algorithm x 1-seed grid the determinism tests pin.
GRID_BASE = {"metric": "auto", "iterations": 5,
             "space_options": SMALL_SPACE_OPTIONS}


def make_campaign(name="grid", **kwargs):
    fields = dict(applications=["nginx", "redis"],
                  algorithms=["random", "grid"], seeds=[3], base=GRID_BASE)
    fields.update(kwargs)
    return CampaignSpec(name=name, **fields)


def _file_bytes(directory, name):
    with open(os.path.join(directory, name + ".json"), "rb") as handle:
        return handle.read()


def _result_files(campaign):
    return [spec.name for spec in campaign.expand()] + ["campaign"]


@pytest.fixture(scope="module")
def reference_dir(tmp_path_factory):
    """The uninterrupted single-process campaign every variant must match."""
    directory = str(tmp_path_factory.mktemp("campaign-reference"))
    result = CampaignRunner(make_campaign(), directory, procs=1).run()
    assert result.ok
    return directory


class TestCampaignSpec:
    def test_expansion_order_and_names(self):
        campaign = make_campaign()
        specs = campaign.expand()
        assert [spec.name for spec in specs] == [
            "grid-nginx-random-s3", "grid-nginx-grid-s3",
            "grid-redis-random-s3", "grid-redis-grid-s3"]
        assert len(campaign) == 4
        assert all(spec.iterations == 5 for spec in specs)
        # base fields are shared, axes vary
        assert {spec.application for spec in specs} == {"nginx", "redis"}
        assert {spec.algorithm for spec in specs} == {"random", "grid"}

    def test_expanded_specs_are_plain_experiment_specs(self):
        spec = make_campaign().expand()[0]
        assert isinstance(spec, ExperimentSpec)
        assert spec.to_dict()["name"] == "grid-nginx-random-s3"

    def test_favor_axis(self):
        campaign = make_campaign(favors=["runtime", "none"])
        specs = campaign.expand()
        assert len(specs) == 8
        assert specs[0].name.endswith("-fruntime")
        assert specs[1].name.endswith("-fnone")
        assert specs[0].favor == "runtime"
        assert specs[1].favor is None

    def test_executions_axis(self):
        campaign = make_campaign(executions=["batch", "async"])
        specs = campaign.expand()
        assert len(specs) == 8
        assert specs[0].name.endswith("-xbatch")
        assert specs[1].name.endswith("-xasync")
        assert specs[0].execution == "batch"
        assert specs[1].execution == "async"
        # round-trips like every other axis
        from repro.core.campaign import CampaignSpec

        assert CampaignSpec.from_dict(campaign.to_dict()) == campaign
        # and overrides can match a single execution slice
        sliced = make_campaign(executions=["batch", "async"], overrides=[
            {"match": {"execution": "async"}, "set": {"iterations": 9}}])
        for spec in sliced.expand():
            assert spec.iterations == (9 if spec.execution == "async" else 5)

    def test_executions_axis_validation(self):
        with pytest.raises(ValueError, match="unknown execution"):
            make_campaign(executions=["batch", "eager"])
        with pytest.raises(ValueError, match="repeats"):
            make_campaign(executions=["async", "async"])
        with pytest.raises(ValueError, match="cannot set execution"):
            make_campaign(executions=["batch", "async"],
                          base=dict(GRID_BASE, execution="async"))

    def test_per_axis_overrides(self):
        campaign = make_campaign(overrides=[
            {"match": {"application": "redis"}, "set": {"metric": "latency"}},
            {"match": {"application": "nginx", "algorithm": "grid"},
             "set": {"iterations": 3}},
        ])
        by_name = {spec.name: spec for spec in campaign.expand()}
        assert by_name["grid-redis-random-s3"].metric == "latency"
        assert by_name["grid-nginx-random-s3"].metric == "auto"
        assert by_name["grid-nginx-grid-s3"].iterations == 3
        assert by_name["grid-redis-grid-s3"].iterations == 5

    def test_override_matching_the_unfavored_slice(self):
        # the file spelling "none" matches the normalized favor value None
        campaign = make_campaign(favors=["runtime", "none"], overrides=[
            {"match": {"favor": "none"}, "set": {"iterations": 9}}])
        for spec in campaign.expand():
            assert spec.iterations == (9 if spec.favor is None else 5)

    def test_override_without_favor_axis_may_set_favor(self):
        campaign = make_campaign(overrides=[
            {"match": {"algorithm": "grid"}, "set": {"favor": "none"}}])
        by_name = {spec.name: spec for spec in campaign.expand()}
        assert by_name["grid-nginx-grid-s3"].favor is None
        assert by_name["grid-nginx-random-s3"].favor == "runtime"

    def test_validation(self):
        with pytest.raises(ValueError, match="repeats"):
            make_campaign(applications=["nginx", "nginx"])
        with pytest.raises(ValueError, match="must not be empty"):
            make_campaign(algorithms=[])
        with pytest.raises(ValueError, match="axes"):
            make_campaign(base=dict(GRID_BASE, application="redis"))
        with pytest.raises(ValueError, match="unknown base spec fields"):
            make_campaign(base=dict(GRID_BASE, bogus=1))
        with pytest.raises(ValueError, match="favors axis"):
            make_campaign(favors=["runtime"],
                          base=dict(GRID_BASE, favor="boot"))
        with pytest.raises(ValueError, match="match"):
            make_campaign(overrides=[{"match": {"metric": "auto"},
                                      "set": {"iterations": 2}}])
        with pytest.raises(ValueError, match="cannot set"):
            make_campaign(overrides=[{"match": {}, "set": {"seed": 9}}])
        # the grid axes are the campaign's identity: patching them would
        # make the deterministic experiment names lie about what ran
        with pytest.raises(ValueError, match="cannot set"):
            make_campaign(overrides=[{"match": {"algorithm": "grid"},
                                      "set": {"algorithm": "random"}}])
        with pytest.raises(ValueError, match="cannot set"):
            make_campaign(overrides=[{"match": {}, "set": {"application": "redis"}}])
        with pytest.raises(ValueError, match="cannot set"):
            make_campaign(favors=["runtime", "none"],
                          overrides=[{"match": {"algorithm": "grid"},
                                      "set": {"favor": "boot"}}])
        # a match no grid point satisfies would be silently inert
        with pytest.raises(ValueError, match="no grid point"):
            make_campaign(overrides=[{"match": {"application": "sqlite"},
                                      "set": {"iterations": 2}}])
        with pytest.raises(ValueError, match="no grid point"):
            make_campaign(overrides=[{"match": {"favor": "boot"},
                                      "set": {"iterations": 2}}])
        with pytest.raises(ValueError, match="favor preset"):
            make_campaign(favors=["sideways"])
        # an invalid grid point surfaces at construction, not mid-campaign
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_campaign(algorithms=["magic"])

    def test_dict_round_trip(self):
        campaign = make_campaign(favors=["runtime", "none"], overrides=[
            {"match": {"application": "redis"}, "set": {"metric": "latency"}}])
        clone = CampaignSpec.from_dict(campaign.to_dict())
        assert clone == campaign
        assert [s.name for s in clone.expand()] == [s.name
                                                    for s in campaign.expand()]
        with pytest.raises(ValueError, match="unknown campaign fields"):
            CampaignSpec.from_dict(dict(campaign.to_dict(), extra=1))

    def test_yaml_and_json_files_round_trip(self, tmp_path):
        campaign = make_campaign(overrides=[
            {"match": {"application": "redis"}, "set": {"metric": "latency"}}])
        for suffix in (".yaml", ".json"):
            path = str(tmp_path / ("campaign" + suffix))
            dump_campaign_file(campaign, path)
            assert load_campaign_file(path) == campaign

    def test_non_campaign_file_rejected(self, tmp_path):
        path = str(tmp_path / "other.yaml")
        with open(path, "w") as handle:
            handle.write("job:\n  name: not-a-campaign\n")
        with pytest.raises(ValueError, match="campaign"):
            load_campaign_file(path)


class TestCampaignDeterminism:
    def test_procs_do_not_change_results(self, reference_dir, tmp_path):
        """--procs 2 output is byte-identical to --procs 1 (records+summaries)."""
        campaign = make_campaign()
        result = CampaignRunner(campaign, str(tmp_path), procs=2).run()
        assert result.ok
        for name in _result_files(campaign):
            assert _file_bytes(str(tmp_path), name) == \
                _file_bytes(reference_dir, name), name

    @pytest.mark.parametrize("procs", [1, 2])
    def test_interrupted_campaign_resumes_identically(self, procs,
                                                      reference_dir, tmp_path):
        """Kill after 2 completed experiments + mid-way through the 3rd,
        resume, and match the uninterrupted campaign byte for byte."""
        campaign = make_campaign()
        directory = str(tmp_path)
        partial = CampaignRunner(campaign, directory, procs=procs).run(
            max_experiments=2)
        assert len(partial.completed) == 2 and len(partial.pending) == 2

        # simulate a worker killed mid-experiment: the third experiment has
        # written per-batch checkpoints but no final history
        victim = campaign.expand()[2]
        store = ResultsStore(directory)
        wayfinder = Wayfinder.from_spec(victim)
        wayfinder.enable_checkpointing(store, name=victim.name, every=1)
        wayfinder.specialize(iterations=2)
        assert os.path.exists(store.checkpoint_path(victim.name))
        assert not os.path.exists(store.history_path(victim.name))

        resumed = CampaignRunner.open(directory, procs=procs).run(resume=True)
        assert resumed.ok
        for name in _result_files(campaign):
            assert _file_bytes(directory, name) == \
                _file_bytes(reference_dir, name), name

    def test_completed_experiments_not_rerun_on_resume(self, tmp_path):
        campaign = make_campaign()
        directory = str(tmp_path)
        CampaignRunner(campaign, directory, procs=1).run(max_experiments=1)
        done = campaign.expand()[0].name
        marker = os.path.getmtime(os.path.join(directory, done + ".json"))
        CampaignRunner.open(directory).run(resume=True)
        assert os.path.getmtime(os.path.join(directory, done + ".json")) == marker

    def test_resume_reruns_complete_entry_with_missing_results(self, tmp_path):
        campaign = make_campaign()
        directory = str(tmp_path)
        CampaignRunner(campaign, directory, procs=1).run(max_experiments=1)
        done = campaign.expand()[0].name
        os.remove(os.path.join(directory, done + ".json"))
        result = CampaignRunner.open(directory).run(resume=True,
                                                    max_experiments=1)
        assert os.path.exists(os.path.join(directory, done + ".json"))
        assert [e["name"] for e in result.completed] == [done]


class TestCampaignRunner:
    def test_refuses_to_clobber_existing_campaign(self, tmp_path):
        campaign = make_campaign()
        CampaignRunner(campaign, str(tmp_path), procs=1).run(max_experiments=1)
        with pytest.raises(ValueError, match="resume"):
            CampaignRunner(campaign, str(tmp_path), procs=1).run()

    def test_resume_rejects_a_different_campaign(self, tmp_path):
        CampaignRunner(make_campaign(), str(tmp_path)).run(max_experiments=1)
        other = make_campaign(seeds=[4])
        with pytest.raises(ValueError, match="does not match"):
            CampaignRunner(other, str(tmp_path)).run(resume=True)

    def test_manifest_records_grid_and_statuses(self, tmp_path):
        campaign = make_campaign()
        CampaignRunner(campaign, str(tmp_path), procs=1,
                       checkpoint_every=2).run(max_experiments=1)
        manifest = load_manifest(str(tmp_path))
        assert manifest["campaign"] == campaign.to_dict()
        assert manifest["checkpoint_every"] == 2
        statuses = [entry["status"] for entry in manifest["experiments"]]
        assert statuses == ["complete", "pending", "pending", "pending"]
        first = manifest["experiments"][0]
        assert first["spec"] == campaign.expand()[0].to_dict()
        assert first["summary"]["trials"] == 5
        # wall-clock overhead must never leak into stored summaries: it would
        # break byte-identical results across process counts
        assert "search_overhead_s" not in first["summary"]

    def test_open_restores_cadence_from_manifest(self, tmp_path):
        CampaignRunner(make_campaign(), str(tmp_path),
                       checkpoint_every=3).run(max_experiments=1)
        runner = CampaignRunner.open(str(tmp_path), procs=2)
        assert runner.checkpoint_every == 3
        assert runner.campaign == make_campaign()

    @pytest.mark.parametrize("procs", [1, 2])
    def test_failed_experiment_does_not_sink_the_campaign(self, procs,
                                                          tmp_path):
        from repro.platform.faults import RetryPolicy

        campaign = CampaignSpec(
            name="flaky", applications=["nginx", "bogus-app"],
            algorithms=["random"], seeds=[0], base=GRID_BASE)
        retry = RetryPolicy(max_attempts=2, base_delay_s=0.001)
        result = CampaignRunner(campaign, str(tmp_path), procs=procs,
                                retry=retry).run()
        assert not result.ok
        assert [e["name"] for e in result.completed] == ["flaky-nginx-random-s0"]
        (failure,) = result.failed
        assert failure["name"] == "flaky-bogus-app-random-s0"
        assert "bogus-app" in failure["error"]
        # a deterministic failure is retried max_attempts times and then
        # quarantined, with the attempts and error kept in the manifest
        assert result.quarantined == result.failed
        stored = load_manifest(str(tmp_path))
        assert [e["status"] for e in stored["experiments"]] == \
            ["complete", "failed-permanent"]
        assert stored["experiments"][1]["attempts"] == 2
        # quarantine is terminal: the campaign has drained, nothing left to do
        assert stored["state"] == "complete"

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="procs"):
            CampaignRunner(make_campaign(), str(tmp_path), procs=0)
        with pytest.raises(ValueError, match="cadence"):
            CampaignRunner(make_campaign(), str(tmp_path), checkpoint_every=0)


class TestCampaignReport:
    def test_report_renders_tables_and_series(self, reference_dir):
        from repro.analysis.campaign_report import (
            best_objective_table,
            load_campaign,
            per_iteration_cost_series,
            render_campaign_report,
            time_to_best_table,
        )

        results = load_campaign(reference_dir)
        assert results.axis_values("application") == ["nginx", "redis"]
        assert results.axis_values("algorithm") == ["random", "grid"]

        table = best_objective_table(results)
        assert "nginx" in table and "redis" in table
        assert "random" in table and "grid" in table

        efficiency = time_to_best_table(results)
        assert "time to best (h)" in efficiency

        series = per_iteration_cost_series(results, "random")
        assert len(series) == 5
        assert series[0][0] == 0.0 and series[0][1] > 0

        report = render_campaign_report(reference_dir, max_points=8)
        assert "4 experiments" in report
        assert "mean best objective per application" in report
        assert "per-iteration cost (grid)" in report

    def test_report_tolerates_incomplete_campaigns(self, tmp_path):
        from repro.analysis.campaign_report import render_campaign_report

        CampaignRunner(make_campaign(), str(tmp_path)).run(max_experiments=1)
        report = render_campaign_report(str(tmp_path))
        assert "1 complete" in report and "3 pending" in report
        # pending cells render as placeholders, not crashes
        assert "-" in report

    def test_summaries_match_stored_documents(self, reference_dir):
        """Manifest summaries agree with the per-experiment history files."""
        from repro.analysis.campaign_report import load_campaign

        results = load_campaign(reference_dir)
        for entry in results.completed:
            document = results.document(entry["name"])
            assert document["summary"]["trials"] == entry["summary"]["trials"]
            assert document["summary"]["best_objective"] == \
                entry["summary"]["best_objective"]
            assert document["metadata"]["campaign"] == "grid"
            assert document["metadata"]["algorithm"] == \
                entry["spec"]["algorithm"]
            records = document["records"]
            assert len(records) == entry["summary"]["trials"]
            assert json.dumps(records, sort_keys=True)  # JSON-clean
