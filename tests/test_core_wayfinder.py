"""Tests for the high-level Wayfinder facade."""

import pytest

from repro import Wayfinder
from repro.config.parameter import ParameterKind
from repro.core.wayfinder import SearchResult, _build_metric
from repro.apps.nginx import NginxApplication

from tests.conftest import SMALL_SPACE_OPTIONS


def small_wayfinder(**kwargs):
    defaults = dict(application="nginx", metric="throughput", seed=21,
                    algorithm="random", favor="runtime",
                    space_options=SMALL_SPACE_OPTIONS)
    defaults.update(kwargs)
    return Wayfinder.for_linux(**defaults)


class TestConstruction:
    def test_for_linux_builds_expected_components(self):
        wayfinder = small_wayfinder()
        assert wayfinder.application.name == "nginx"
        assert wayfinder.metric.name == "throughput"
        assert wayfinder.algorithm.name == "random"
        assert "net.core.somaxconn" in wayfinder.space

    def test_auto_metric_selection(self):
        wayfinder = small_wayfinder(application="sqlite", metric="auto")
        assert wayfinder.metric.direction == "minimize"

    def test_memory_metric_and_riscv(self):
        wayfinder = small_wayfinder(metric="memory", architecture="riscv64",
                                    favor="compile")
        assert wayfinder.metric.name == "memory"
        assert wayfinder.hardware.architecture == "riscv64"

    def test_unknown_metric_rejected(self):
        app = NginxApplication()
        with pytest.raises(ValueError):
            _build_metric("happiness", app)

    def test_unknown_favor_rejected(self):
        with pytest.raises(ValueError):
            small_wayfinder(favor="everything")

    def test_frozen_parameters_applied(self):
        wayfinder = small_wayfinder(frozen={"kernel.randomize_va_space": 2})
        assert wayfinder.space.frozen_parameters["kernel.randomize_va_space"] == 2

    def test_for_unikraft(self):
        wayfinder = Wayfinder.for_unikraft(seed=3, algorithm="random")
        assert wayfinder.os_model.is_unikernel
        assert len(wayfinder.space) == 33

    def test_minimize_metric_propagated_to_algorithm(self):
        wayfinder = small_wayfinder(application="sqlite", metric="auto",
                                    algorithm="deeptune")
        assert wayfinder.algorithm.maximize is False


class TestSpecialize:
    def test_random_session_produces_result(self):
        wayfinder = small_wayfinder()
        result = wayfinder.specialize(iterations=12)
        assert isinstance(result, SearchResult)
        assert result.iterations == 12
        assert result.best_performance is not None
        assert result.best_configuration is not None
        assert result.total_time_s > 0
        assert 0.0 <= result.crash_rate <= 1.0
        assert result.improvement_factor is not None
        summary = result.summary()
        assert summary["metric"] == "throughput"
        assert summary["algorithm"] == "random"

    def test_improvement_factor_inverts_for_minimization(self):
        wayfinder = small_wayfinder(application="sqlite", metric="auto")
        result = wayfinder.specialize(iterations=10)
        if result.best_performance is not None and result.default_objective:
            expected = result.default_objective / result.best_performance
            assert result.improvement_factor == pytest.approx(expected)

    def test_time_budget_session(self):
        wayfinder = small_wayfinder()
        result = wayfinder.specialize(time_budget_s=1500.0)
        assert result.total_time_s >= 1500.0

    def test_trained_model_exposed_for_deeptune(self):
        wayfinder = small_wayfinder(algorithm="deeptune")
        wayfinder.specialize(iterations=8)
        assert wayfinder.trained_model() is not None
        random_wayfinder = small_wayfinder(algorithm="random")
        assert random_wayfinder.trained_model() is None

    def test_favor_runtime_keeps_compile_defaults_mostly(self):
        wayfinder = small_wayfinder()
        result = wayfinder.specialize(iterations=10)
        default = wayfinder.os_model.default_configuration()
        compile_params = [p.name for p in
                          wayfinder.space.parameters_of_kind(ParameterKind.COMPILE_TIME)]
        changed = 0
        total = 0
        for record in result.history:
            for name in compile_params:
                total += 1
                if record.configuration[name] != default[name]:
                    changed += 1
        assert changed / total < 0.1
