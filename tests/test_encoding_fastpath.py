"""Equivalence and cache-correctness tests for the vectorized encoding plan.

The compiled columnar fast path behind ``ConfigEncoder.encode_batch`` must be
*bit-identical* to the reference per-parameter path (``encode_reference``)
on every application space shipped with the reproduction, and the LRU vector
cache must be invisible: cached vectors are copies, eviction never changes
results, and a seeded end-to-end DeepTune search selects the same
configuration sequence with the cache on or off.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.config.encoding import ConfigEncoder
from repro.config.parameter import (
    BoolParameter,
    CategoricalParameter,
    IntParameter,
    ParameterKind,
    TristateParameter,
)
from repro.config.space import ConfigSpace, Configuration
from repro.vm.os_model import linux_os_model, unikraft_os_model


#: application -> the OS model whose space that application is tuned on.
#: nginx/redis/sqlite/npb share the Linux space; unikraft-nginx has its own.
APP_SPACES = {
    "nginx": "linux",
    "redis": "linux",
    "sqlite": "linux",
    "npb": "linux",
    "unikraft-nginx": "unikraft",
}


@pytest.fixture(scope="module")
def os_spaces():
    return {
        "linux": linux_os_model(version="v4.19", seed=3).space,
        "unikraft": unikraft_os_model(seed=3).space,
    }


def reference_matrix(encoder, configurations):
    return np.vstack([encoder.encode_reference(c) for c in configurations]) \
        if configurations else np.empty((0, encoder.width))


class TestBatchEquivalence:
    @pytest.mark.parametrize("application", sorted(APP_SPACES))
    def test_encode_batch_bit_identical_per_app_space(self, application, os_spaces):
        space = os_spaces[APP_SPACES[application]]
        encoder = ConfigEncoder(space)
        rng = random.Random(hash(application) % (2 ** 31))
        configurations = [space.sample_configuration(rng) for _ in range(24)]
        configurations.append(space.default_configuration())
        expected = reference_matrix(encoder, configurations)
        actual = encoder.encode_batch(configurations)
        # Element-for-element, not approximately: the fast path must be a
        # drop-in replacement on the scoring hot path.
        assert np.array_equal(expected, actual)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_property_style_random_spaces(self, seed):
        """Randomly composed spaces of every parameter type encode identically."""
        rng = random.Random(seed)
        parameters = []
        for index in range(rng.randint(5, 40)):
            kind = rng.choice(list(ParameterKind))
            style = rng.randrange(4)
            name = "p{:03d}".format(index)
            if style == 0:
                parameters.append(BoolParameter(name, kind, default=rng.random() < 0.5))
            elif style == 1:
                parameters.append(TristateParameter(name, kind,
                                                    default=rng.choice(["n", "y", "m"])))
            elif style == 2:
                choices = ["c{}".format(i) for i in range(rng.randint(2, 6))]
                parameters.append(CategoricalParameter(name, kind, choices))
            else:
                low = rng.randint(0, 50)
                high = low + rng.randint(1, 10 ** rng.randint(1, 6))
                parameters.append(IntParameter(name, kind, default=low,
                                               minimum=low, maximum=high,
                                               log_scale=rng.random() < 0.5))
        space = ConfigSpace(parameters, name="random-space-{}".format(seed))
        encoder = ConfigEncoder(space)
        configurations = [space.sample_configuration(rng) for _ in range(16)]
        assert np.array_equal(reference_matrix(encoder, configurations),
                              encoder.encode_batch(configurations))

    def test_single_encode_matches_reference(self, os_spaces):
        space = os_spaces["unikraft"]
        encoder = ConfigEncoder(space)
        rng = random.Random(7)
        for _ in range(10):
            configuration = space.sample_configuration(rng)
            assert np.array_equal(encoder.encode(configuration),
                                  encoder.encode_reference(configuration))

    def test_custom_parameter_subclass_uses_fallback(self):
        class HalfParameter(IntParameter):
            """Overrides encode: the compiled plan must not assume base-class math."""

            def encode(self, value):
                return [self.clip(value) / (2.0 * self.maximum)]

        space = ConfigSpace([
            HalfParameter("custom", ParameterKind.RUNTIME, default=2,
                          minimum=0, maximum=10),
            BoolParameter("flag", ParameterKind.RUNTIME),
        ])
        encoder = ConfigEncoder(space)
        configuration = space.coerce({"custom": 6, "flag": True})
        vector = encoder.encode_batch([configuration])[0]
        assert vector[0] == 6 / 20.0
        assert np.array_equal(vector, encoder.encode_reference(configuration))

    def test_tristate_subclass_with_custom_states(self):
        class SwitchParameter(TristateParameter):
            """Inherits encode but redefines the state alphabet."""

            STATES = ("off", "on", "auto")

        space = ConfigSpace([
            SwitchParameter("mode", ParameterKind.RUNTIME, default="off"),
            BoolParameter("flag", ParameterKind.RUNTIME),
        ])
        encoder = ConfigEncoder(space)
        configuration = space.coerce({"mode": "auto", "flag": False})
        vector = encoder.encode_batch([configuration])[0]
        assert np.array_equal(vector, encoder.encode_reference(configuration))
        assert vector[:3].tolist() == [0.0, 0.0, 1.0]

    def test_decode_roundtrip(self, os_spaces):
        """decode(encode(x)) is idempotent and exact for finite-domain params."""
        for space in os_spaces.values():
            encoder = ConfigEncoder(space)
            rng = random.Random(11)
            for _ in range(5):
                configuration = space.sample_configuration(rng)
                decoded = encoder.decode(encoder.encode(configuration))
                for parameter in space.parameters():
                    if parameter.is_categorical:
                        assert decoded[parameter.name] == configuration[parameter.name]
                # Lossy numeric encodings stabilise after one round trip.
                twice = encoder.decode(encoder.encode(decoded))
                assert twice == decoded


class TestVectorCache:
    def make_space(self):
        return ConfigSpace([
            BoolParameter("a", ParameterKind.RUNTIME),
            IntParameter("b", ParameterKind.RUNTIME, default=5, minimum=0,
                         maximum=100, log_scale=True),
            CategoricalParameter("c", ParameterKind.RUNTIME, ["x", "y", "z"]),
        ])

    def test_cached_vectors_are_copies(self):
        space = self.make_space()
        encoder = ConfigEncoder(space)
        configuration = space.default_configuration()
        first = encoder.encode(configuration)
        first[:] = 777.0  # mutate the returned vector
        second = encoder.encode(configuration)
        assert np.array_equal(second, encoder.encode_reference(configuration))
        assert not np.array_equal(first, second)

    def test_batch_rows_are_copies(self):
        space = self.make_space()
        encoder = ConfigEncoder(space)
        configurations = [space.default_configuration()]
        matrix = encoder.encode_batch(configurations)
        matrix[:] = -123.0
        clean = encoder.encode_batch(configurations)
        assert np.array_equal(clean[0], encoder.encode_reference(configurations[0]))

    def test_cache_hit_accounting_and_eviction(self):
        space = self.make_space()
        encoder = ConfigEncoder(space, cache_size=4)
        rng = random.Random(0)
        configurations = [space.sample_configuration(rng) for _ in range(10)]
        encoder.encode_batch(configurations)
        assert encoder.cache_len <= 4
        # Results stay correct under eviction pressure.
        assert np.array_equal(encoder.encode_batch(configurations),
                              reference_matrix(encoder, configurations))
        encoder.clear_cache()
        assert encoder.cache_len == 0

    def test_cache_disabled(self):
        space = self.make_space()
        encoder = ConfigEncoder(space, cache_size=0)
        configuration = space.default_configuration()
        encoder.encode(configuration)
        encoder.encode(configuration)
        assert encoder.cache_len == 0
        assert encoder.cache_hits == 0

    def test_duplicate_configurations_encoded_once(self):
        space = self.make_space()
        encoder = ConfigEncoder(space)
        configuration = space.default_configuration()
        same = Configuration(space, configuration.as_dict())
        matrix = encoder.encode_batch([configuration, same, configuration])
        assert encoder.cache_misses == 1
        assert np.array_equal(matrix[0], matrix[1])
        assert np.array_equal(matrix[0], matrix[2])


class TestSeededSearchUnchanged:
    def run_sequence(self, cache_size, trials=50):
        """A seeded 50-trial DeepTune session; returns the proposed configs."""
        from repro.deeptune.algorithm import DeepTuneSearch
        from repro.platform.history import ExplorationHistory, TrialRecord
        from repro.platform.metrics import ThroughputMetric
        from repro.vm.failures import FailureStage

        parameters = [
            IntParameter("k{:02d}".format(index), ParameterKind.RUNTIME,
                         default=32, minimum=0, maximum=1024,
                         log_scale=index % 2 == 0)
            for index in range(12)
        ]
        space = ConfigSpace(parameters, name="seeded-repro")
        search = DeepTuneSearch(space, seed=21, warmup_iterations=5,
                                candidate_pool_size=32,
                                training_steps_per_iteration=5, batch_size=16)
        search.encoder = ConfigEncoder(space, cache_size=cache_size)
        history = ExplorationHistory(ThroughputMetric())
        chosen = []
        clock = 0.0
        for index in range(trials):
            configuration = search.propose(history)
            chosen.append(configuration)
            objective = float(sum(configuration["k{:02d}".format(i)]
                                  for i in range(4)))
            record = TrialRecord(
                index=index, configuration=configuration, objective=objective,
                crashed=index % 9 == 4,
                failure_stage=FailureStage.NONE, failure_reason="",
                metric_value=None, memory_mb=None, duration_s=60.0,
                started_at_s=clock)
            clock += 60.0
            history.add(record)
            search.observe(record)
        return chosen

    def test_cache_does_not_change_selected_configurations(self):
        with_cache = self.run_sequence(cache_size=ConfigEncoder.DEFAULT_CACHE_SIZE)
        without_cache = self.run_sequence(cache_size=0)
        assert with_cache == without_cache

    def test_seeded_run_is_deterministic(self):
        first = self.run_sequence(cache_size=ConfigEncoder.DEFAULT_CACHE_SIZE)
        second = self.run_sequence(cache_size=ConfigEncoder.DEFAULT_CACHE_SIZE)
        assert first == second
