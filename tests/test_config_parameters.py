"""Unit tests for the typed configuration parameters."""

import math
import random

import pytest

from repro.config.parameter import (
    BoolParameter,
    CategoricalParameter,
    HexParameter,
    IntParameter,
    ParameterKind,
    StringParameter,
    TristateParameter,
)


RNG = random.Random(7)


class TestParameterKind:
    def test_compile_time_requires_rebuild_and_reboot(self):
        assert ParameterKind.COMPILE_TIME.requires_rebuild
        assert ParameterKind.COMPILE_TIME.requires_reboot

    def test_boot_time_requires_reboot_only(self):
        assert not ParameterKind.BOOT_TIME.requires_rebuild
        assert ParameterKind.BOOT_TIME.requires_reboot

    def test_runtime_requires_nothing(self):
        assert not ParameterKind.RUNTIME.requires_rebuild
        assert not ParameterKind.RUNTIME.requires_reboot


class TestBoolParameter:
    def test_domain_and_cardinality(self):
        param = BoolParameter("CONFIG_X", ParameterKind.COMPILE_TIME, default=True)
        assert param.domain_values() == (False, True)
        assert param.cardinality() == 2

    def test_validate(self):
        param = BoolParameter("CONFIG_X", ParameterKind.COMPILE_TIME)
        assert param.validate(True)
        assert param.validate(0)
        assert not param.validate("yes")

    def test_encode_decode_roundtrip(self):
        param = BoolParameter("CONFIG_X", ParameterKind.COMPILE_TIME)
        for value in (True, False):
            assert param.decode(param.encode(value)) == value

    def test_sample_stays_in_domain(self):
        param = BoolParameter("CONFIG_X", ParameterKind.COMPILE_TIME)
        assert all(param.validate(param.sample(RNG)) for _ in range(20))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            BoolParameter("", ParameterKind.COMPILE_TIME)


class TestTristateParameter:
    def test_states(self):
        param = TristateParameter("CONFIG_MOD", ParameterKind.COMPILE_TIME, default="m")
        assert set(param.domain_values()) == {"n", "y", "m"}

    def test_invalid_default_rejected(self):
        with pytest.raises(ValueError):
            TristateParameter("CONFIG_MOD", ParameterKind.COMPILE_TIME, default="x")

    def test_clip_coerces_bools(self):
        param = TristateParameter("CONFIG_MOD", ParameterKind.COMPILE_TIME)
        assert param.clip(True) == "y"
        assert param.clip(False) == "n"
        assert param.clip("weird") == param.default

    def test_encode_is_one_hot(self):
        param = TristateParameter("CONFIG_MOD", ParameterKind.COMPILE_TIME)
        encoded = param.encode("m")
        assert sum(encoded) == 1.0
        assert param.decode(encoded) == "m"


class TestIntParameter:
    def make(self, log_scale=False):
        return IntParameter("net.core.somaxconn", ParameterKind.RUNTIME, default=128,
                            minimum=16, maximum=65535, log_scale=log_scale)

    def test_validation_bounds(self):
        param = self.make()
        assert param.validate(16)
        assert param.validate(65535)
        assert not param.validate(15)
        assert not param.validate(True)

    def test_clip(self):
        param = self.make()
        assert param.clip(5) == 16
        assert param.clip(1 << 20) == 65535
        assert param.clip("not a number") == param.default

    def test_default_outside_range_rejected(self):
        with pytest.raises(ValueError):
            IntParameter("x", ParameterKind.RUNTIME, default=5, minimum=10, maximum=20)

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            IntParameter("x", ParameterKind.RUNTIME, default=5, minimum=10, maximum=1)

    @pytest.mark.parametrize("log_scale", [False, True])
    def test_encode_within_unit_interval(self, log_scale):
        param = self.make(log_scale)
        for value in (16, 128, 1024, 65535):
            encoded = param.encode(value)
            assert len(encoded) == 1
            assert 0.0 <= encoded[0] <= 1.0

    @pytest.mark.parametrize("log_scale", [False, True])
    def test_encode_decode_approximately_roundtrips(self, log_scale):
        param = self.make(log_scale)
        for value in (16, 128, 4096, 65535):
            decoded = param.decode(param.encode(value))
            assert abs(math.log1p(decoded) - math.log1p(value)) < 0.05

    def test_encode_monotone(self):
        param = self.make(log_scale=True)
        encodings = [param.encode(v)[0] for v in (16, 64, 1024, 30000, 65535)]
        assert encodings == sorted(encodings)

    def test_sample_respects_bounds(self, rng):
        param = self.make(log_scale=True)
        for _ in range(50):
            assert param.validate(param.sample(rng))

    def test_small_range_enumerates_domain(self):
        param = IntParameter("small", ParameterKind.RUNTIME, default=1, minimum=0, maximum=5)
        assert param.domain_values() == tuple(range(6))

    def test_cardinality(self):
        assert self.make().cardinality() == 65535 - 16 + 1

    def test_log_scale_negative_minimum_rejected(self):
        with pytest.raises(ValueError):
            IntParameter("x", ParameterKind.RUNTIME, default=0, minimum=-5, maximum=5,
                         log_scale=True)


class TestHexParameter:
    def test_render(self):
        param = HexParameter("CONFIG_BASE", ParameterKind.COMPILE_TIME, default=0x1000,
                             minimum=0, maximum=0xFFFF)
        assert param.render(0x1000) == "0x1000"
        assert param.type_name == "hex"


class TestCategoricalParameter:
    def make(self):
        return CategoricalParameter("net.core.default_qdisc", ParameterKind.RUNTIME,
                                    choices=("pfifo_fast", "fq", "fq_codel"),
                                    default="pfifo_fast")

    def test_rejects_empty_choices(self):
        with pytest.raises(ValueError):
            CategoricalParameter("x", ParameterKind.RUNTIME, choices=())

    def test_rejects_duplicate_choices(self):
        with pytest.raises(ValueError):
            CategoricalParameter("x", ParameterKind.RUNTIME, choices=("a", "a"))

    def test_rejects_unknown_default(self):
        with pytest.raises(ValueError):
            CategoricalParameter("x", ParameterKind.RUNTIME, choices=("a", "b"), default="c")

    def test_one_hot_encoding(self):
        param = self.make()
        encoded = param.encode("fq")
        assert encoded == [0.0, 1.0, 0.0]
        assert param.decode(encoded) == "fq"

    def test_clip_unknown_returns_default(self):
        param = self.make()
        assert param.clip("bogus") == "pfifo_fast"

    def test_is_categorical(self):
        assert self.make().is_categorical

    def test_string_parameter_is_categorical_subclass(self):
        param = StringParameter("name", ParameterKind.RUNTIME, choices=("a",))
        assert isinstance(param, CategoricalParameter)
        assert param.type_name == "string"


class TestEqualityAndSerialization:
    def test_equality_by_name_type_default(self):
        first = BoolParameter("CONFIG_A", ParameterKind.COMPILE_TIME, default=True)
        second = BoolParameter("CONFIG_A", ParameterKind.COMPILE_TIME, default=True)
        third = BoolParameter("CONFIG_A", ParameterKind.COMPILE_TIME, default=False)
        assert first == second
        assert first != third
        assert hash(first) == hash(second)

    def test_to_dict_contains_type_and_kind(self):
        param = IntParameter("vm.swappiness", ParameterKind.RUNTIME, default=60,
                             minimum=0, maximum=200)
        data = param.to_dict()
        assert data["type"] == "int"
        assert data["kind"] == "runtime"
        assert data["minimum"] == 0 and data["maximum"] == 200
